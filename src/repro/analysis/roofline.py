"""Roofline CPU throughput model (paper Fig 1a and the software bars).

The paper's Fig 1 frames seeding as a roofline problem: attainable
throughput is the minimum of

* the **bandwidth roof** -- peak memory bandwidth divided by the bytes of
  index data each read needs, and
* the **compute roof** -- how fast the cores can execute the per-read
  operation mix.

Both inputs are *measured* here (bytes/read from the tracer, op counts
from engine stats); only the hardware constants (Table I) and per-op CPU
cycle costs are parameters.  The per-op costs model why a CPU is compute
bound despite seeding being memory bound in nature (§I): every FMD
occurrence query or ERT node decode spends tens of cycles in address
arithmetic, branches and stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CpuSystem:
    """Table I: AWS c5n.18xlarge (2-socket Xeon Platinum 8124M)."""

    name: str = "c5n.18xlarge"
    peak_bw_bytes_per_s: float = 136e9
    threads: int = 72
    clock_hz: float = 3.0e9


@dataclass(frozen=True)
class OpCosts:
    """CPU cycles per engine operation, plus a fixed per-read overhead.

    The per-phase constants are *per line fetched*, so for the ERT they
    fold in everything a 64 B line triggers in software: several
    variable-width node decodes, the per-character comparison loops of
    UNIFORM strings and leaf reference checks, and the branch mispredicts
    the paper calls out as the reason a CPU stays compute bound (§I).
    ``fixed_cycles_per_read`` is the engine-independent seeding machinery
    (pivot loop control, SMEM bookkeeping, containment filtering, seed
    formatting).

    Calibrated against two of the paper's measurements (EXPERIMENTS.md):
    BWA-MEM2 software seeding sits at ~60 % of its bandwidth roof (it is
    compute/stall bound), and CPU-ERT lands 2-3x above CPU-BWA-MEM2
    (paper: 2.1x) rather than at the full ~4.5x bandwidth-ratio gain.
    """

    per_phase: "dict[str, float]" = field(default_factory=lambda: {
        "occ_lookup": 170.0,
        "sa_lookup": 170.0,
        "index_lookup": 160.0,
        "table_lookup": 160.0,
        "prefix_count": 120.0,
        "tree_root": 500.0,
        "tree_traversal": 700.0,
        "ref_fetch": 600.0,
        "leaf_gather": 350.0,
    })
    fixed_cycles_per_read: float = 40_000.0


def cpu_throughput(bytes_per_read: float,
                   requests_by_phase: "dict[str, float]",
                   system: "CpuSystem | None" = None,
                   costs: "OpCosts | None" = None) -> "dict[str, float]":
    """Reads/s for one configuration on the Table I CPU.

    ``requests_by_phase`` holds per-read request counts.  Returns the
    bandwidth roof, the compute roof and their minimum (the modelled
    throughput), so benches can plot the full roofline.
    """
    system = system or CpuSystem()
    costs = costs or OpCosts()
    if bytes_per_read <= 0:
        raise ValueError("bytes_per_read must be positive")
    if not requests_by_phase:
        raise ValueError("no operations recorded")
    bw_roof = system.peak_bw_bytes_per_s / bytes_per_read
    cycles = costs.fixed_cycles_per_read + sum(
        count * costs.per_phase.get(phase, 200.0)
        for phase, count in requests_by_phase.items())
    compute_roof = system.clock_hz * system.threads / cycles
    return {
        "bandwidth_roof": bw_roof,
        "compute_roof": compute_roof,
        "throughput": min(bw_roof, compute_roof),
    }
