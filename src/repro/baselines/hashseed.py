"""Fixed-length k-mer hash seeding (the §VII comparison family).

A direct-addressed table maps every k-mer code to its occurrence
positions in the double-strand text.  Seeding a read looks up each of
its windows (optionally strided) and emits one fixed-length seed per
window hit -- no maximality, no containment, no variable length.  The
point of carrying this baseline is quantitative: SMEM seeding emits far
fewer seeds for the same read ("hash-based seeding coupled with
filtration algorithms are less effective in FMD mappers ... that already
produce fewer seeds prior to seed-extension").

Traffic is traced like the other engines: one bucket-header access per
lookup plus the position-list bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import rolling_codes
from repro.memsim.trace import AddressSpace, MemoryTracer
from repro.seeding.types import Seed, SeedingResult
from repro.sequence.reference import Reference

PHASE_BUCKET = "hash_bucket"
PHASE_POSITIONS = "hash_positions"


@dataclass(frozen=True)
class HashSeedConfig:
    """Table geometry: k-mer length, lookup stride, occurrence cap."""

    k: int = 12
    stride: int = 1
    max_positions_per_kmer: int = 500
    bucket_header_bytes: int = 8
    position_bytes: int = 4

    def __post_init__(self) -> None:
        if not 4 <= self.k <= 15:
            raise ValueError("k must be in 4..15")
        if self.stride < 1:
            raise ValueError("stride must be positive")


class HashSeedIndex:
    """Direct-addressed k-mer -> positions table over ``X``."""

    def __init__(self, reference: Reference,
                 config: "HashSeedConfig | None" = None,
                 space: "AddressSpace | None" = None) -> None:
        self.reference = reference
        self.config = config or HashSeedConfig()
        self.tracer: "MemoryTracer | None" = None
        text = reference.both_strands
        codes = rolling_codes(text, self.config.k)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [sorted_codes.size]))
        self.buckets: "dict[int, np.ndarray]" = {}
        total_positions = 0
        for lo, hi in zip(starts, ends):
            positions = np.sort(order[lo:hi])
            self.buckets[int(sorted_codes[lo])] = positions
            total_positions += int(positions.size)

        self.space = space or AddressSpace()
        self.header_region = self.space.allocate(
            "hash.headers", 4 ** self.config.k
            * self.config.bucket_header_bytes)
        self.positions_region = self.space.allocate(
            "hash.positions", total_positions * self.config.position_bytes)
        # Dense offsets into the positions region, bucket by bucket.
        self._bucket_offset = {}
        offset = 0
        for code in sorted(self.buckets):
            self._bucket_offset[code] = offset
            offset += int(self.buckets[code].size) * self.config.position_bytes

    def index_bytes(self) -> "dict[str, int]":
        return {
            "headers": self.header_region.size,
            "positions": self.positions_region.size,
            "total": self.header_region.size + self.positions_region.size,
        }

    def attach_tracer(self, tracer: "MemoryTracer | None") -> None:
        self.tracer = tracer

    def lookup(self, code: int) -> np.ndarray:
        """Positions of one k-mer, with traffic."""
        if self.tracer is not None:
            self.tracer.access(
                self.header_region.base
                + code * self.config.bucket_header_bytes,
                self.config.bucket_header_bytes, PHASE_BUCKET,
                self.header_region.name)
        positions = self.buckets.get(code)
        if positions is None:
            return np.empty(0, dtype=np.int64)
        if self.tracer is not None:
            capped = min(int(positions.size),
                         self.config.max_positions_per_kmer)
            self.tracer.access(
                self.positions_region.base + self._bucket_offset[code],
                max(1, capped * self.config.position_bytes),
                PHASE_POSITIONS, self.positions_region.name)
        return positions


class HashSeeder:
    """Window-by-window hash seeding of reads."""

    name = "hash-seed"

    def __init__(self, index: HashSeedIndex) -> None:
        self.index = index

    def seed_read(self, read: np.ndarray) -> SeedingResult:
        cfg = self.index.config
        k = cfg.k
        n = int(read.size)
        result = SeedingResult()
        for start in range(0, n - k + 1, cfg.stride):
            code = 0
            for c in read[start:start + k]:
                code = (code << 2) | int(c)
            positions = self.index.lookup(code)
            count = int(positions.size)
            if count == 0:
                continue
            if count > cfg.max_positions_per_kmer:
                hits = ()
            else:
                hits = tuple(int(p) for p in positions)
            result.smems.append(Seed(read_start=start, length=k,
                                     hits=hits, hit_count=count))
        return result
