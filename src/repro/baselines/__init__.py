"""Non-FMD seeding baselines from the paper's related work (§VII).

The paper contrasts SMEM seeding with the hash-table seeding family
(mrsFAST, Hobbes, minimap-style): hash every fixed-length k-mer, look up
each read window, and rely on downstream filtration to tame the seed
flood.  :mod:`repro.baselines.hashseed` implements that family so the
"fewer seeds prior to seed-extension" argument can be *measured* instead
of cited.
"""

from repro.baselines.hashseed import HashSeedIndex, HashSeeder

__all__ = ["HashSeedIndex", "HashSeeder"]
