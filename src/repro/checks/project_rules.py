"""Whole-program rules ERT012-ERT016 (the pass-2 checks).

These rules consume the :class:`~repro.checks.callgraph.ProjectGraph`
built from every file's pass-1 summary, so they see facts no per-file
rule can: ``# repro: hot`` flowing through calls into un-annotated
helpers (ERT012), Python-level per-element loops and per-iteration
allocations anywhere in the transitive hot closure (ERT013/ERT014 --
together, the vectorization gate for the hot-path kernel work), shm
segments created in one function without the registration/unlink
discipline ``repro.parallel.shm`` established (ERT015), and callables
crossing a pool boundary with a closure or receiver in tow (ERT016).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Tuple

from repro.checks import symbols
from repro.checks.engine import ProjectRule, register
from repro.checks.symbols import Fact, FunctionSymbol
from repro.checks.violations import Violation

if TYPE_CHECKING:  # pragma: no cover
    from repro.checks.callgraph import ProjectGraph


def _chain(path: "Tuple[str, ...]") -> str:
    """Human-readable call chain for a hot-path message."""
    return " -> ".join(f"{qualname}()" for qualname in path)


def _fact_violation(rule_id: str, fn: FunctionSymbol, fact: Fact,
                    message: str) -> Violation:
    return Violation(path=fn.path, line=fact.line, col=fact.col,
                     rule=rule_id, message=message, end_line=fact.end_line)


def _hot_facts(graph: "ProjectGraph", kind: str,
               include_roots: bool
               ) -> "Iterable[Tuple[FunctionSymbol, Fact, Tuple[str, ...]]]":
    """Facts of ``kind`` inside the transitive hot closure, with the
    call chain that makes their function hot."""
    for qualname, path in sorted(graph.hot_paths().items()):
        fn = graph.functions[qualname]
        if fn.hot and not include_roots:
            continue
        for fact in fn.facts:
            if fact.kind == kind:
                yield fn, fact, path


@register
class TransitiveHotTelemetryRule(ProjectRule):
    id = "ERT012"
    title = "telemetry call in transitively hot code"
    rationale = (
        "`# repro: hot` flows through calls: a helper only a hot "
        "function reaches runs per-bp/per-node too, so ERT007's "
        "telemetry ban applies to it even without its own annotation. "
        "Count into a local stats struct and flush at a span boundary.")
    scope = ("repro",)

    def check_project(self, graph: "ProjectGraph"
                      ) -> "Iterable[Violation]":
        # Annotated-hot roots are ERT007's (per-file) responsibility;
        # this rule covers exactly the callees ERT007 cannot see.
        for fn, fact, path in _hot_facts(graph, symbols.TELEMETRY_CALL,
                                         include_roots=False):
            yield _fact_violation(
                self.id, fn, fact,
                f"telemetry call {fact.detail}(...) in {fn.name}(), "
                f"which is transitively hot via {_chain(path)}; count "
                f"into a plain stats struct and flush at a span "
                f"boundary instead")


@register
class HotNdarrayLoopRule(ProjectRule):
    id = "ERT013"
    title = "per-element Python loop over an ndarray in hot code"
    rationale = (
        "A Python-level loop touching one array element per iteration "
        "pays interpreter dispatch per bp/node -- the exact cost the "
        "vectorized-kernel roadmap item removes.  Hot code must use "
        "whole-array numpy operations; a pragma on the loop marks it "
        "as acknowledged vectorization debt.")
    scope = ("repro",)

    def check_project(self, graph: "ProjectGraph"
                      ) -> "Iterable[Violation]":
        for fn, fact, path in _hot_facts(graph, symbols.NDARRAY_LOOP,
                                         include_roots=True):
            where = f"hot {fn.name}()" if fn.hot else (
                f"{fn.name}(), transitively hot via {_chain(path)}")
            yield _fact_violation(
                self.id, fn, fact,
                f"per-element loop in {where}: {fact.detail}; "
                f"replace with whole-array numpy operations (or "
                f"annotate as vectorization debt)")


@register
class HotLoopAllocationRule(ProjectRule):
    id = "ERT014"
    title = "allocation inside a loop in hot code"
    rationale = (
        "Allocating a fresh buffer every iteration of a hot loop "
        "(np.zeros, list(...) and friends) churns the allocator where "
        "a reused workspace belongs -- compare SwWorkspace, which "
        "hoists the Smith-Waterman DP rows out of the per-read loop.")
    scope = ("repro",)

    def check_project(self, graph: "ProjectGraph"
                      ) -> "Iterable[Violation]":
        for fn, fact, path in _hot_facts(graph, symbols.LOOP_ALLOC,
                                         include_roots=True):
            where = f"hot {fn.name}()" if fn.hot else (
                f"{fn.name}(), transitively hot via {_chain(path)}")
            yield _fact_violation(
                self.id, fn, fact,
                f"{fact.detail}(...) allocates inside a loop in {where}; "
                f"hoist the buffer into a reused workspace "
                f"(cf. SwWorkspace)")


@register
class ShmLifecycleRule(ProjectRule):
    id = "ERT015"
    title = "unpaired shared-memory lifecycle"
    rationale = (
        "A SharedMemory segment is a kernel object: created but not "
        "registered in _LIVE_SEGMENTS it escapes the atexit sweep, and "
        "without a construction-failure unlink handler an exception "
        "between create and register leaks /dev/shm until reboot.  "
        "Attach sides must close on failure or the fd leaks per batch.")
    scope = ("repro.parallel",)

    def check_project(self, graph: "ProjectGraph"
                      ) -> "Iterable[Violation]":
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            for fact in fn.facts:
                if fact.kind == symbols.SHM_CREATE:
                    missing: "List[str]" = []
                    if symbols.REGISTERS_SEGMENT not in fn.flags:
                        missing.append(
                            "registration in _LIVE_SEGMENTS")
                    if symbols.UNLINK_IN_CLEANUP not in fn.flags:
                        missing.append(
                            "a construction-failure unlink handler")
                    if missing:
                        yield _fact_violation(
                            self.id, fn, fact,
                            f"SharedMemory(create=True) in {fn.name}() "
                            f"lacks {' and '.join(missing)} "
                            f"(cf. SharedIndexBuffer)")
                elif fact.kind == symbols.SHM_ATTACH:
                    if symbols.CLOSE_IN_CLEANUP not in fn.flags:
                        yield _fact_violation(
                            self.id, fn, fact,
                            f"SharedMemory attach in {fn.name}() has no "
                            f"close path on failure; wrap the use in "
                            f"try/except and close the segment "
                            f"(cf. attach_index)")


@register
class PoolCaptureSafetyRule(ProjectRule):
    id = "ERT016"
    title = "capture-unsafe callable crossing a pool boundary"
    rationale = (
        "submit() pickles its callable: a lambda fails outright under "
        "the spawn start method, a nested def drags the enclosing "
        "frame's captures along, and a bound method ships its whole "
        "receiver -- potentially an index-sized object -- to every "
        "worker.  Pool-crossing callables must be module-level "
        "functions taking explicit, picklable arguments.")
    scope = ("repro",)

    _MESSAGES = {
        symbols.SUBMIT_LAMBDA: (
            "lambda submitted to an executor; lambdas do not pickle "
            "under spawn -- pass a module-level function with explicit "
            "arguments"),
        symbols.SUBMIT_CLOSURE: (
            "nested function '{detail}' submitted to an executor; it "
            "closes over the enclosing frame -- hoist it to module "
            "level and pass its inputs explicitly"),
        symbols.SUBMIT_BOUND: (
            "bound method {detail} submitted to an executor; pickling "
            "it ships the entire receiver to the worker -- pass a "
            "module-level function and the fields it needs"),
    }

    def check_project(self, graph: "ProjectGraph"
                      ) -> "Iterable[Violation]":
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            for fact in fn.facts:
                template = self._MESSAGES.get(fact.kind)
                if template is None:
                    continue
                yield _fact_violation(
                    self.id, fn, fact,
                    template.format(detail=fact.detail))


__all__ = [
    "TransitiveHotTelemetryRule",
    "HotNdarrayLoopRule",
    "HotLoopAllocationRule",
    "ShmLifecycleRule",
    "PoolCaptureSafetyRule",
]
