"""Repo-specific static analysis: the invariant linter behind
``ert-repro check``.

The paper's claims rest on deterministic, integer-exact accounting --
cycle counts, bytes per read, page-open breakdowns -- and PR 1 showed how
easily a latent defect (an ``id()``-keyed cache without a pinned
referent) slips past review.  This package encodes those repository
invariants as mechanical AST checks:

========  ==============================================================
ERT001    ``id()`` results must not key caches/sets without a pinning
          pragma (object ids are recycled after garbage collection).
ERT002    no unseeded ``random`` / ``np.random`` module-level calls
          inside ``repro`` (determinism).
ERT003    no raw ``time.time()`` / ``time.perf_counter()`` outside
          :mod:`repro.telemetry` (all timing goes through spans).
ERT004    no float literals or true division in the integer cycle/byte
          accounting modules (``repro.memsim``, ``repro.accel``,
          ``repro.core.layout``).
ERT005    import layering (e.g. ``repro.core`` never imports
          ``repro.accel`` or ``repro.telemetry.export``).
ERT006    no mutable default arguments, no bare ``except:``.
ERT007    functions marked ``# repro: hot`` must not call the telemetry
          recording API directly (batch into stats structs and flush).
========  ==============================================================

False positives are silenced in place with ``# repro: allow(ERT00N)``
line pragmas (or ``# repro: allow-file(ERT00N)`` for whole modules whose
domain legitimately breaks a rule); every pragma should carry a comment
justifying the exception.  See ``docs/static_analysis.md``.

This package is stdlib-only and imports nothing else from ``repro`` --
it must be runnable on a tree too broken to import.
"""

from __future__ import annotations

from repro.checks.engine import (
    CheckReport,
    Rule,
    SourceFile,
    all_rules,
    check_file,
    check_source,
    iter_python_files,
    register,
    run_checks,
)
from repro.checks.pragmas import FilePragmas, parse_pragmas
from repro.checks.report import render_json, render_text, report_as_dict
from repro.checks.violations import Violation

# Importing the rule modules registers every built-in rule.
from repro.checks import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "CheckReport",
    "FilePragmas",
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "check_file",
    "check_source",
    "iter_python_files",
    "parse_pragmas",
    "register",
    "render_json",
    "render_text",
    "report_as_dict",
    "run_checks",
]
