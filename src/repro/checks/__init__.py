"""Repo-specific static analysis: the invariant linter behind
``ert-repro check``.

The paper's claims rest on deterministic, integer-exact accounting --
cycle counts, bytes per read, page-open breakdowns -- and PR 1 showed how
easily a latent defect (an ``id()``-keyed cache without a pinned
referent) slips past review.  This package encodes those repository
invariants as mechanical AST checks:

========  ==============================================================
ERT001    ``id()`` results must not key caches/sets without a pinning
          pragma (object ids are recycled after garbage collection).
ERT002    no unseeded ``random`` / ``np.random`` module-level calls
          inside ``repro`` (determinism).
ERT003    no raw ``time.time()`` / ``time.perf_counter()`` outside
          :mod:`repro.telemetry` (all timing goes through spans).
ERT004    no float literals or true division in the integer cycle/byte
          accounting modules (``repro.memsim``, ``repro.accel``,
          ``repro.core.layout``).
ERT005    import layering (e.g. ``repro.core`` never imports
          ``repro.accel`` or ``repro.telemetry.export``).
ERT006    no mutable default arguments, no bare ``except:``.
ERT007    functions marked ``# repro: hot`` must not call the telemetry
          recording API directly (batch into stats structs and flush).
ERT008    worker pools and shared memory are confined to
          ``repro.parallel`` (the one audited lifecycle module).
ERT009    no broad ``except`` swallowing pool submit/result failures
          inside ``repro.parallel`` (re-raise through the taxonomy).
ERT010    no ``print``/stdout/stderr writes from library code.
ERT011    no stdlib ``logging`` in ``repro`` (use ``repro.logging``).
ERT012    *project*: telemetry calls in *transitively* hot code --
          ``# repro: hot`` flows through the call graph to helpers.
ERT013    *project*: per-element Python loops over ndarrays anywhere in
          the hot closure (the vectorization gate).
ERT014    *project*: buffer allocation inside loops in hot code (reuse
          a workspace, cf. ``SwWorkspace``).
ERT015    *project*: shm creates must register in ``_LIVE_SEGMENTS``
          with a construction-failure unlink; attaches must close.
ERT016    *project*: callables crossing a pool boundary must be
          module-level (no lambdas, closures, or bound methods).
========  ==============================================================

Rules marked *project* run in a second, whole-program pass: pass 1
summarizes every file (symbols, call sites, facts -- see
:mod:`repro.checks.symbols`), pass 2 assembles a conservative call
graph (:mod:`repro.checks.callgraph`) and checks cross-file invariants
over it.

False positives are silenced in place with ``# repro: allow(ERT0NN)``
line pragmas (or ``# repro: allow-file(ERT0NN)`` for whole modules whose
domain legitimately breaks a rule); every pragma should carry a comment
justifying the exception.  See ``docs/static_analysis.md``.

This package is stdlib-only and imports nothing else from ``repro`` --
it must be runnable on a tree too broken to import.
"""

from __future__ import annotations

from repro.checks.engine import (
    CheckReport,
    FileScan,
    ProjectRule,
    Rule,
    SourceFile,
    all_rules,
    check_file,
    check_source,
    iter_python_files,
    register,
    run_checks,
    run_project_rules,
    scan_file,
    scan_source,
)
from repro.checks.pragmas import FilePragmas, parse_pragmas
from repro.checks.report import render_json, render_text, report_as_dict
from repro.checks.sarif import render_sarif
from repro.checks.violations import Violation

# Importing the rule modules registers every built-in rule.
from repro.checks import rules as _rules  # noqa: F401  (registration side effect)
from repro.checks import project_rules as _project_rules  # noqa: F401

__all__ = [
    "CheckReport",
    "FilePragmas",
    "FileScan",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "Violation",
    "all_rules",
    "check_file",
    "check_source",
    "iter_python_files",
    "parse_pragmas",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "report_as_dict",
    "run_checks",
    "run_project_rules",
    "scan_file",
    "scan_source",
]
