"""The built-in rule set: the invariants this repository actually has.

Each rule documents its rationale inline; ``docs/static_analysis.md``
carries the prose version with paper references.  Scopes are logical
module prefixes (see :meth:`repro.checks.engine.Rule.applies_to`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import Rule, SourceFile, register
from repro.checks.violations import Violation

# ----------------------------------------------------------------------
# ERT001 -- id() as a cache key
# ----------------------------------------------------------------------

#: Container-method names whose argument acts as a key/member.
_KEY_METHODS = frozenset({
    "add", "discard", "remove", "get", "setdefault", "pop", "count",
    "index", "__contains__", "__getitem__", "__setitem__",
})


def _is_id_call(node: ast.AST, src: SourceFile) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and src.imports.get("id", "id") == "id")


@register
class IdAsKeyRule(Rule):
    """ERT001: ``id()`` must not key a dict/set without a pinning pragma.

    CPython recycles object ids after garbage collection; a cache keyed
    by ``id(read)`` without a strong reference to ``read`` can silently
    serve another object's entry (the exact PR-1 bug in
    ``ErtSeedingEngine``).  Either pin the referent for the cache's
    lifetime (as ``core/engine.py`` does) or document the lifetime
    guarantee with ``# repro: allow(ERT001)``.
    """

    id = "ERT001"
    title = "id() used as a cache key or set member"
    rationale = ("object ids are recycled once the referent is garbage "
                 "collected; a bare id() key can alias another object")

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not _is_id_call(node, src):
                continue
            context = self._key_context(node, src)
            if context is not None:
                yield src.violation(
                    self.id, node,
                    f"id() result used as {context} -- pin the referent "
                    f"for the container's lifetime or annotate the "
                    f"guarantee with `# repro: allow(ERT001)`")

    @staticmethod
    def _key_context(call: ast.Call, src: SourceFile) -> "str | None":
        node: ast.AST = call
        parent = src.parent(node)
        # Climb through tuple displays: (id(a), start) is still a key.
        while isinstance(parent, ast.Tuple):
            node = parent
            parent = src.parent(node)
        if parent is None:
            return None
        if isinstance(parent, ast.Subscript) and parent.slice is node:
            return "a subscript key"
        if isinstance(parent, ast.Compare):
            in_ops = any(isinstance(op, (ast.In, ast.NotIn))
                         for op in parent.ops)
            if in_ops and parent.left is node:
                return "a membership probe"
        if (isinstance(parent, ast.Call) and node in parent.args
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr in _KEY_METHODS):
            return f"an argument to .{parent.func.attr}()"
        if isinstance(parent, ast.Assign) and parent.value is node:
            return "a stored key variable"
        if isinstance(parent, ast.AnnAssign) and parent.value is node:
            return "a stored key variable"
        if isinstance(parent, ast.SetComp) and parent.elt is node:
            return "a set-comprehension member"
        if isinstance(parent, ast.DictComp) and parent.key is node:
            return "a dict-comprehension key"
        return None


# ----------------------------------------------------------------------
# ERT002 -- unseeded randomness
# ----------------------------------------------------------------------

#: Constructors that take an explicit seed and return an isolated
#: generator -- the sanctioned way to be random in this repository.
_SEEDED_FACTORIES = frozenset({
    "Random", "SystemRandom", "default_rng", "RandomState", "Generator",
    "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64",
})


@register
class UnseededRandomRule(Rule):
    """ERT002: no module-level ``random`` / ``np.random`` calls in repro.

    ``tests/test_determinism.py`` asserts byte-identical pipelines; any
    call against the global generators (``random.random()``,
    ``np.random.rand()``, even ``np.random.seed()``) threads hidden
    process-global state through the run.  Construct a seeded generator
    (``np.random.default_rng(seed)``, ``random.Random(seed)``) instead.
    """

    id = "ERT002"
    title = "module-level random call (hidden global RNG state)"
    rationale = ("determinism: results must be a pure function of inputs "
                 "and explicit seeds")
    scope = ("repro",)

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, ast.Call):
                continue
            qual = src.qualified_name(node.func)
            if qual is None:
                continue
            for prefix in ("random.", "numpy.random.", "np.random."):
                if qual.startswith(prefix):
                    tail = qual[len(prefix):].split(".", 1)[0]
                    if tail not in _SEEDED_FACTORIES:
                        yield src.violation(
                            self.id, node,
                            f"call to {qual}() uses the process-global "
                            f"RNG; construct a seeded generator "
                            f"(e.g. np.random.default_rng(seed)) instead")
                    break


# ----------------------------------------------------------------------
# ERT003 -- raw wall-clock reads
# ----------------------------------------------------------------------

_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns", "time.clock_gettime",
    "time.thread_time", "time.thread_time_ns",
})


@register
class RawClockRule(Rule):
    """ERT003: all timing goes through :mod:`repro.telemetry` spans.

    Ad-hoc ``time.perf_counter()`` pairs fragment the timing story: they
    bypass the span tracer's nesting/exclusive-time accounting and the
    ``--profile`` report.  Use ``telemetry.span(...)`` (or a local
    :class:`repro.telemetry.spans.Tracer` when the numbers must be
    collected regardless of the global telemetry flag).
    """

    id = "ERT003"
    title = "raw clock call outside repro.telemetry"
    rationale = "all stage timing flows through the span tracer"
    scope = ("repro",)
    # repro.logging timestamps its records and rate-limits on a
    # monotonic clock; like the telemetry package it owns its clocks.
    exclude_scope = ("repro.telemetry", "repro.logging")

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, ast.Call):
                continue
            qual = src.qualified_name(node.func)
            if qual in _CLOCK_CALLS:
                yield src.violation(
                    self.id, node,
                    f"raw {qual}() call; route timing through "
                    f"repro.telemetry spans")


# ----------------------------------------------------------------------
# ERT004 -- float arithmetic in integer accounting modules
# ----------------------------------------------------------------------


@register
class IntegerAccountingRule(Rule):
    """ERT004: cycle/byte accounting stays integer-exact.

    The paper's accelerator model (like EXMA's and FindeR's) budgets in
    whole cycles, bytes and page opens; a float sneaking into those sums
    makes results platform-dependent and breaks exact regression
    baselines.  Derived *reporting* quantities (hit rates, reads/s) are
    fine -- annotate them with ``# repro: allow(ERT004)`` (or
    ``allow-file`` for modules whose whole domain is physical, like the
    energy models).
    """

    id = "ERT004"
    title = "float literal / true division in integer accounting code"
    rationale = ("cycle, byte and page-open sums must stay integer-exact "
                 "for deterministic cross-platform baselines")
    scope = ("repro.memsim", "repro.accel", "repro.core.layout")

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield src.violation(
                    self.id, node,
                    f"float literal {node.value!r} in an integer "
                    f"accounting module; use integers (or annotate a "
                    f"derived reporting value with "
                    f"`# repro: allow(ERT004)`)")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield src.violation(
                    self.id, node,
                    "true division in an integer accounting module; use "
                    "// (or annotate a derived reporting value with "
                    "`# repro: allow(ERT004)`)")
            elif (isinstance(node, ast.AugAssign)
                  and isinstance(node.op, ast.Div)):
                yield src.violation(
                    self.id, node,
                    "augmented true division (/=) in an integer "
                    "accounting module; use //=")


# ----------------------------------------------------------------------
# ERT005 -- import layering
# ----------------------------------------------------------------------

_PACKAGES = (
    "repro.sequence", "repro.telemetry", "repro.logging", "repro.memsim",
    "repro.seeding", "repro.core", "repro.fmindex", "repro.extend",
    "repro.kernels", "repro.parallel", "repro.accel", "repro.analysis",
    "repro.baselines", "repro.checks", "repro.ledger", "repro.cli",
)


def _everything_but(*allowed: str) -> "tuple[str, ...]":
    return tuple(pkg for pkg in _PACKAGES if pkg not in allowed)


#: Forbidden import prefixes per package (longest-prefix match on the
#: importing module).  The shape of the DAG: sequence and telemetry are
#: leaves; memsim sits above telemetry; seeding/core/fmindex/extend form
#: the algorithmic middle and may flush metrics (repro.telemetry) but
#: never touch the exporters; kernels (the batched vector paths) sits
#: just above that middle -- it reads seeding/core/extend internals but
#: nothing in the middle may import it back (the scalar oracle must not
#: depend on its vectorization; callers inject kernel functions
#: downward, see ReadAligner.sw_batch / tb_batch); parallel
#: orchestrates the middle
#: layers and kernels (it is the sole owner of worker pools / shared
#: memory, rule ERT008); accel consumes traces from core/seeding;
#: analysis/baselines/ledger/cli sit on top (ledger reads telemetry
#: snapshots but nothing below it may import it); checks stands alone so
#: it can lint a tree too broken to import.
_LAYERING: "dict[str, tuple[str, ...]]" = {
    "repro.sequence": _everything_but("repro.sequence"),
    "repro.telemetry": _everything_but("repro.telemetry"),
    # The structured logger is a pure leaf: subsystems emit through it,
    # it depends on nothing (not even telemetry).
    "repro.logging": _everything_but("repro.logging"),
    "repro.memsim": _everything_but("repro.memsim", "repro.telemetry"),
    "repro.seeding": _everything_but(
        "repro.seeding", "repro.sequence", "repro.telemetry")
        + ("repro.telemetry.export",),
    "repro.core": ("repro.accel", "repro.analysis", "repro.baselines",
                   "repro.checks", "repro.cli", "repro.extend",
                   "repro.kernels", "repro.ledger", "repro.parallel",
                   "repro.telemetry.export"),
    "repro.fmindex": ("repro.accel", "repro.analysis", "repro.baselines",
                      "repro.checks", "repro.cli", "repro.core",
                      "repro.extend", "repro.kernels", "repro.ledger",
                      "repro.parallel", "repro.telemetry.export"),
    "repro.extend": ("repro.accel", "repro.analysis", "repro.baselines",
                     "repro.checks", "repro.cli", "repro.kernels",
                     "repro.ledger", "repro.parallel",
                     "repro.telemetry.export"),
    "repro.kernels": ("repro.accel", "repro.analysis", "repro.baselines",
                      "repro.checks", "repro.cli", "repro.fmindex",
                      "repro.ledger", "repro.memsim", "repro.parallel",
                      "repro.telemetry.export"),
    "repro.parallel": ("repro.accel", "repro.analysis", "repro.baselines",
                       "repro.checks", "repro.cli", "repro.ledger",
                       "repro.telemetry.export"),
    "repro.accel": ("repro.analysis", "repro.baselines", "repro.checks",
                    "repro.cli", "repro.extend", "repro.kernels",
                    "repro.ledger", "repro.parallel"),
    "repro.baselines": ("repro.accel", "repro.analysis", "repro.checks",
                        "repro.cli", "repro.kernels", "repro.ledger",
                        "repro.parallel"),
    "repro.analysis": ("repro.checks", "repro.cli", "repro.ledger"),
    "repro.checks": _everything_but("repro.checks"),
    "repro.ledger": _everything_but("repro.ledger", "repro.telemetry"),
}


@register
class ImportLayeringRule(Rule):
    """ERT005: the package DAG is law.

    Lower layers importing upper ones (core pulling in the accelerator
    simulator, seeding pulling in the JSON exporters) create cycles,
    drag heavyweight dependencies into hot paths, and break the
    "seeding is bit-identical with or without instrumentation"
    guarantee.
    """

    id = "ERT005"
    title = "import violates the package layering"
    rationale = "keeps the dependency DAG acyclic and hot paths lean"
    scope = ("repro",)

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        module = src.module or ""
        layer, forbidden = None, ()
        for prefix, banned in _LAYERING.items():
            if ((module == prefix or module.startswith(prefix + "."))
                    and (layer is None or len(prefix) > len(layer))):
                layer, forbidden = prefix, banned
        if layer is None:
            return
        for node in src.walk():
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield from self._flag(src, node, layer, forbidden,
                                          alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = src.resolve_import_module(node)
                if base is None:
                    continue
                hit = False
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    # `from repro import telemetry` imports the submodule
                    # repro.telemetry, so test module+name first.
                    for violation in self._flag(src, node, layer, forbidden,
                                                f"{base}.{alias.name}"):
                        yield violation
                        hit = True
                if not hit:
                    yield from self._flag(src, node, layer, forbidden, base)

    def _flag(self, src: SourceFile, node: ast.AST, layer: str,
              forbidden: "tuple[str, ...]",
              imported: str) -> "Iterator[Violation]":
        for banned in forbidden:
            if imported == banned or imported.startswith(banned + "."):
                yield src.violation(
                    self.id, node,
                    f"{layer} must not import {banned} "
                    f"(imported {imported}); see the layering table in "
                    f"docs/static_analysis.md")
                return


# ----------------------------------------------------------------------
# ERT006 -- mutable defaults and bare except
# ----------------------------------------------------------------------

_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})


@register
class FootgunRule(Rule):
    """ERT006: no mutable default arguments, no bare ``except:``.

    A mutable default is shared across every call of the function --
    state leaks between reads/batches, which is exactly the kind of
    cross-read contamination the equivalence tests exist to catch.  A
    bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and
    hides real defects behind fallback paths.
    """

    id = "ERT006"
    title = "mutable default argument or bare except"
    rationale = ("shared mutable defaults leak state across calls; bare "
                 "except hides defects and breaks Ctrl-C")

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                args = node.args
                defaults: "list[ast.expr]" = list(args.defaults)
                defaults.extend(d for d in args.kw_defaults if d is not None)
                for default in defaults:
                    if self._is_mutable(default):
                        name = getattr(node, "name", "<lambda>")
                        yield src.violation(
                            self.id, default,
                            f"mutable default argument in {name}(); "
                            f"default to None and create the object in "
                            f"the body")
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield src.violation(
                    self.id, node,
                    "bare `except:`; catch a concrete exception type "
                    "(bare except swallows KeyboardInterrupt/SystemExit)")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return func.id in _MUTABLE_CTORS
            if isinstance(func, ast.Attribute):
                return func.attr in _MUTABLE_CTORS
        return False


# ----------------------------------------------------------------------
# ERT007 -- telemetry calls inside hot loops
# ----------------------------------------------------------------------


def _telemetry_call_qual(src: SourceFile,
                         node: ast.Call) -> "str | None":
    """Resolved dotted name of ``node`` when it is a telemetry/metrics
    call (the matcher ERT007 and ERT017 share), else ``None``."""
    qual = src.qualified_name(node.func)
    if qual is None:
        return None
    root = qual.split(".", 1)[0]
    if qual.startswith("repro.telemetry.") or root in ("telemetry",
                                                       "metrics"):
        return qual
    return None


@register
class HotLoopTelemetryRule(Rule):
    """ERT007: hot functions batch counters; they never call telemetry.

    ``docs/observability.md`` is explicit: spans and direct
    ``telemetry.*`` calls belong at per-read granularity or coarser;
    anything per-bp or per-node counts into a stats struct that a driver
    flushes at a span boundary.  Functions annotated ``# repro: hot``
    (the tree walks, cache/DRAM accesses) are held to that mechanically.
    """

    id = "ERT007"
    title = "direct telemetry/metrics call inside a `# repro: hot` function"
    rationale = ("hot loops must batch into stats structs and flush "
                 "deltas at span boundaries (docs/observability.md)")

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not src.pragmas.is_hot(node.lineno):
                continue
            yield from self._scan_hot_body(src, node)

    def _scan_hot_body(self, src: SourceFile,
                       func: ast.AST) -> "Iterator[Violation]":
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            qual = _telemetry_call_qual(src, node)
            if qual is None:
                continue
            name = getattr(func, "name", "<function>")
            yield src.violation(
                self.id, node,
                f"{qual}() called inside hot function {name}(); "
                f"count into a stats struct and flush the delta at a "
                f"span boundary instead (docs/observability.md)")


# ----------------------------------------------------------------------
# ERT008 -- worker pools / shared memory outside repro.parallel
# ----------------------------------------------------------------------

_POOL_CALLS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.Process",
    "multiprocessing.process.Process",
    "multiprocessing.context.Process",
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
})


@register
class WorkerLifecycleRule(Rule):
    """ERT008: worker lifecycle has exactly one implementation.

    :mod:`repro.parallel` owns process pools and shared-memory segments:
    it is the only place that knows the attach/close/unlink protocol
    (resource-tracker semantics differ by start method), preserves output
    ordering, and folds worker stats/telemetry back into the parent.  An
    ad-hoc ``ProcessPoolExecutor`` or ``SharedMemory`` elsewhere would
    silently skip all three.  Route the work through the
    :mod:`repro.parallel` scheduler instead.
    """

    id = "ERT008"
    title = "process pool / shared memory constructed outside repro.parallel"
    rationale = ("one entry point for worker lifecycle: ordering, "
                 "telemetry aggregation and segment cleanup live in "
                 "repro.parallel")
    scope = ("repro",)
    exclude_scope = ("repro.parallel",)

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, ast.Call):
                continue
            qual = src.qualified_name(node.func)
            if qual in _POOL_CALLS:
                yield src.violation(
                    self.id, node,
                    f"{qual}() constructed outside repro.parallel; route "
                    f"worker pools and shared-memory segments through "
                    f"the repro.parallel scheduler")


# ----------------------------------------------------------------------
# ERT009 -- swallowed pool failures
# ----------------------------------------------------------------------

#: Method names that submit work to or collect results from a pool.
_POOL_INTERACTIONS = frozenset({"submit", "result"})

#: Exception names considered "broad": a handler catching one of these
#: around pool interaction sees every possible failure kind.
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register
class SwallowedPoolFailureRule(Rule):
    """ERT009: pool failures route through the typed-error taxonomy.

    The fault-tolerance guarantees of :mod:`repro.parallel` (retry
    budget, in-order merge integrity, serial degradation) all assume
    failures surface as :class:`~repro.parallel.faults.
    ParallelExecutionError` subclasses.  A broad ``except`` around
    ``submit()`` / ``result()`` that swallows the exception instead of
    re-raising bypasses classification entirely: a dead worker looks
    like a missing batch, and the byte-identical merge silently loses
    output.  Broad handlers guarding pool interaction must contain a
    ``raise`` (re-raise, or raise a typed error built from the caught
    exception).
    """

    id = "ERT009"
    title = "broad except swallows a pool failure"
    rationale = ("worker failures must surface as typed "
                 "ParallelExecutionError subclasses; a swallowed pool "
                 "exception silently drops a batch from the merge")
    scope = ("repro.parallel",)

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, ast.Try):
                continue
            if not self._touches_pool(node.body):
                continue
            for handler in node.handlers:
                if not self._is_broad(handler):
                    continue
                if any(isinstance(sub, ast.Raise)
                       for sub in ast.walk(handler)):
                    continue
                yield src.violation(
                    self.id, handler,
                    "broad except around pool submit()/result() without a "
                    "raise; route the failure through the typed errors in "
                    "repro.parallel.faults (or re-raise)")

    @staticmethod
    def _touches_pool(body: "list[ast.stmt]") -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _POOL_INTERACTIONS):
                    return True
        return False

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        return any(isinstance(t, ast.Name) and t.id in _BROAD_EXCEPTIONS
                   for t in types)


# ----------------------------------------------------------------------
# ERT010 -- ad-hoc console output in library code
# ----------------------------------------------------------------------

#: Qualified attribute calls that write straight to the process streams.
_STREAM_WRITES = frozenset({
    "sys.stdout.write", "sys.stderr.write",
})

#: Modules allowed to talk to the console: the CLI entry points (their
#: whole job is console I/O) and the progress reporter (the one
#: sanctioned stderr heartbeat, see repro/telemetry/progress.py).
_CONSOLE_MODULES = (
    "repro.cli", "repro.checks.cli", "repro.ledger.cli",
    "repro.telemetry.progress",
)


@register
class DirectOutputRule(Rule):
    """ERT010: library code never prints.

    A ``print()`` or ``sys.stderr.write()`` buried in the seeding or
    scheduler stack corrupts machine-consumed stdout (the ``seed`` TSV
    stream), interleaves unreadably under the worker pool, and bypasses
    both the rate-limited progress reporter and the telemetry event
    stream -- the two sanctioned ways to surface run state.  Status
    belongs in telemetry events/metrics; user-facing text belongs in the
    CLI modules; live heartbeats belong in
    :class:`repro.telemetry.progress.ProgressReporter`.
    """

    id = "ERT010"
    title = "direct console output outside the CLI / progress reporter"
    rationale = ("library prints corrupt machine-readable stdout and "
                 "bypass the progress reporter and telemetry; console "
                 "I/O lives in the CLI modules only")
    scope = ("repro",)
    exclude_scope = _CONSOLE_MODULES

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id == "print"
                    and src.imports.get("print", "print") == "print"):
                yield src.violation(
                    self.id, node,
                    "print() in library code; emit telemetry events/"
                    "metrics, or surface status through the CLI or the "
                    "progress reporter (docs/observability.md)")
                continue
            qual = src.qualified_name(node.func)
            if qual in _STREAM_WRITES:
                yield src.violation(
                    self.id, node,
                    f"{qual}() in library code; console streams belong "
                    f"to the CLI modules and the progress reporter "
                    f"(docs/observability.md)")


# ----------------------------------------------------------------------
# ERT011 -- stdlib logging in library code
# ----------------------------------------------------------------------

#: Stdlib ``logging`` entry points that configure or write through the
#: process-global root-handler machinery.
_STDLIB_LOGGING_CALLS = frozenset({
    "logging.basicConfig", "logging.getLogger", "logging.Logger",
    "logging.debug", "logging.info", "logging.warning", "logging.warn",
    "logging.error", "logging.exception", "logging.critical",
    "logging.log", "logging.disable", "logging.captureWarnings",
    "logging.setLoggerClass", "logging.addLevelName",
    "logging.config.dictConfig", "logging.config.fileConfig",
    "logging.config.listen",
})


@register
class StdlibLoggingRule(Rule):
    """ERT011: operational events route through :mod:`repro.logging`.

    The stdlib ``logging`` module is one process-global tree of loggers
    and handlers, configured by whoever calls ``basicConfig`` first --
    import-order-sensitive global state of exactly the kind this
    repository bans (compare ERT002's global RNG).  It also writes to
    stderr by default, bypassing ERT010's console discipline, and its
    records are unstructured text.  Library code emits operational
    events through :mod:`repro.logging` (structured JSONL,
    rate-limited, off unless the CLI turns it on) instead.
    """

    id = "ERT011"
    title = "stdlib logging used in library code"
    rationale = ("the root-handler tree is import-order-sensitive global "
                 "state and writes unstructured text to stderr; "
                 "repro.logging is the structured, rate-limited path")
    scope = ("repro",)

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, ast.Call):
                continue
            qual = src.qualified_name(node.func)
            if qual is None:
                continue
            if (qual in _STDLIB_LOGGING_CALLS
                    or qual.startswith("logging.root.")):
                yield src.violation(
                    self.id, node,
                    f"{qual}() configures or writes through the stdlib "
                    f"logging root handlers; emit structured events "
                    f"through repro.logging instead "
                    f"(docs/observability.md)")


# ----------------------------------------------------------------------
# ERT017 -- per-element telemetry in the vector kernels
# ----------------------------------------------------------------------

#: Lexical contexts that execute their body once per element.
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp,
               ast.SetComp, ast.DictComp, ast.GeneratorExp)


@register
class KernelLoopTelemetryRule(Rule):
    """ERT017: the vector kernels flush telemetry per batch, never per
    element.

    ERT007 polices functions annotated ``# repro: hot``; the batched
    kernels in :mod:`repro.kernels` are hot by construction -- every
    loop there sweeps lanes, wave rounds, gathers, or traceback rows,
    so a telemetry call lexically inside *any* of their loops is a
    per-element call regardless of annotation.  The kernels count work
    into :class:`repro.kernels.stats.KernelBatchStats` (plain ndarray
    adds, unconditional) and flush the registry once per batch under
    the ``kernels.batch`` span; registry traffic at loop granularity
    would reintroduce exactly the overhead that batch-flush design
    exists to avoid -- and break the <5% vector-telemetry overhead
    budget ``benchmarks/bench_telemetry_overhead.py`` enforces.
    """

    id = "ERT017"
    title = "telemetry call inside a repro.kernels loop"
    rationale = ("kernel sweeps accumulate into KernelBatchStats and "
                 "flush once per batch (docs/observability.md); "
                 "per-element registry calls undo the batch-flush "
                 "design")
    scope = ("repro.kernels",)

    def check(self, src: SourceFile) -> "Iterator[Violation]":
        for node in src.walk():
            if not isinstance(node, ast.Call):
                continue
            qual = _telemetry_call_qual(src, node)
            if qual is None:
                continue
            if self._enclosing_loop(src, node) is None:
                continue
            yield src.violation(
                self.id, node,
                f"{qual}() called inside a kernel loop; accumulate "
                f"into KernelBatchStats and flush once per batch "
                f"instead (docs/observability.md)")

    @staticmethod
    def _enclosing_loop(src: SourceFile,
                        node: ast.AST) -> "ast.AST | None":
        cursor = src.parent(node)
        while cursor is not None:
            if isinstance(cursor, _LOOP_NODES):
                return cursor
            cursor = src.parent(cursor)
        return None


__all__ = [
    "DirectOutputRule",
    "FootgunRule",
    "HotLoopTelemetryRule",
    "IdAsKeyRule",
    "ImportLayeringRule",
    "IntegerAccountingRule",
    "KernelLoopTelemetryRule",
    "RawClockRule",
    "StdlibLoggingRule",
    "SwallowedPoolFailureRule",
    "UnseededRandomRule",
    "WorkerLifecycleRule",
]
