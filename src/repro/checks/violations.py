"""The violation record every rule emits and reporters consume."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location.

    Ordering is (path, line, col, rule) so reports group naturally by
    file and read top to bottom.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: Last physical line of the offending statement (pragma-suppression
    #: range; not part of the report schema).
    end_line: int = 0

    def format(self) -> str:
        """The canonical one-line rendering (clickable path:line:col)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> "dict[str, object]":
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
