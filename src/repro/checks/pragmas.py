"""Pragma comments controlling the checker.

Four forms, all spelled as ``# repro: <directive>``:

* ``# repro: allow(ERT001)`` / ``# repro: allow(ERT001, ERT004)`` --
  suppress the named rules on the physical line carrying the pragma
  (multi-line statements are covered: a violation is suppressed if any
  line the offending statement spans carries an allow for its rule);
* ``# repro: allow-file(ERT004)`` -- suppress the named rules for the
  whole file (for modules whose domain legitimately breaks a rule, e.g.
  the energy models' physical constants);
* ``# repro: hot`` -- placed on (or directly above) a ``def`` line,
  marks the function as a hot loop for ERT007;
* ``# repro: module(repro.memsim.fake)`` -- override the logical module
  name used for rule scoping (test fixtures use this to place a snippet
  "inside" a scoped package without living there).

Pragmas are read from real COMMENT tokens (via :mod:`tokenize`), so
pragma-shaped text inside string literals is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*(?P<directive>allow-file|allow|hot|module)"
    r"\s*(?:\(\s*(?P<args>[^)]*?)\s*\))?")


@dataclass
class FilePragmas:
    """All pragmas of one source file, indexed for rule queries."""

    #: line number -> rule ids allowed on that line.
    line_allows: "dict[int, frozenset[str]]" = field(default_factory=dict)
    #: rule ids allowed anywhere in the file.
    file_allows: "frozenset[str]" = frozenset()
    #: line numbers carrying ``# repro: hot``.
    hot_lines: "frozenset[int]" = frozenset()
    #: logical module override (``# repro: module(...)``), if any.
    module_override: "str | None" = None

    def allows(self, rule: str, first_line: int, last_line: "int | None" = None) -> bool:
        """Is ``rule`` suppressed for a violation spanning the given lines?"""
        if rule in self.file_allows:
            return True
        last = first_line if last_line is None else last_line
        for line in range(first_line, last + 1):
            if rule in self.line_allows.get(line, ()):
                return True
        return False

    def is_hot(self, def_line: int) -> bool:
        """Is a ``def`` at ``def_line`` marked hot (pragma on the line
        itself or the line directly above, e.g. with the decorators)?"""
        return def_line in self.hot_lines or (def_line - 1) in self.hot_lines


def _split_rules(args: "str | None") -> "frozenset[str]":
    if not args:
        return frozenset()
    return frozenset(part.strip() for part in args.split(",") if part.strip())


def parse_pragmas(source: str) -> FilePragmas:
    """Extract every ``# repro:`` pragma from ``source``."""
    line_allows: "dict[int, set[str]]" = {}
    file_allows: "set[str]" = set()
    hot_lines: "set[int]" = set()
    module_override: "str | None" = None
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Broken file: fall back to a line scan so pragmas still work
        # (the engine reports the syntax error separately).
        comments = [(i, line) for i, line in enumerate(source.splitlines(), 1)
                    if "#" in line]
    for lineno, text in comments:
        for match in _PRAGMA_RE.finditer(text):
            directive = match.group("directive")
            args = match.group("args")
            if directive == "allow":
                line_allows.setdefault(lineno, set()).update(_split_rules(args))
            elif directive == "allow-file":
                file_allows.update(_split_rules(args))
            elif directive == "hot":
                hot_lines.add(lineno)
            elif directive == "module" and args:
                module_override = args.strip()
    return FilePragmas(
        line_allows={line: frozenset(rules)
                     for line, rules in line_allows.items()},
        file_allows=frozenset(file_allows),
        hot_lines=frozenset(hot_lines),
        module_override=module_override,
    )
