"""Pass 1 of the whole-program analyzer: per-file symbol extraction.

:func:`summarize` reduces one parsed :class:`~repro.checks.engine.
SourceFile` to a :class:`ModuleSummary` -- a picklable record of every
module-level function and method, the call sites inside each, and the
*facts* the project rules (ERT012-ERT016) care about: telemetry calls,
per-element ndarray loops, allocations inside loop bodies, shared-memory
create/attach sites, and executor submissions of capture-unsafe
callables.  Summaries carry no AST nodes, so pass 1 can run in worker
processes (``--jobs``) and ship its results back through a pickle.

Resolution here is *local*: call targets are dotted names resolved
through the file's import-alias table plus a small per-function type
inference (annotated parameters, ``x = SomeClass(...)`` locals).  Turning
those dotted names into project symbols -- following re-export chains,
method lookup through base classes -- is pass 2's job
(:mod:`repro.checks.callgraph`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover -- import cycle guard (engine imports us lazily)
    from repro.checks.engine import SourceFile

# -- fact kinds --------------------------------------------------------

#: Direct call into the telemetry recording API (ERT007 / ERT012).
TELEMETRY_CALL = "telemetry-call"
#: Python-level per-element loop over an ndarray (ERT013).
NDARRAY_LOOP = "ndarray-loop"
#: Buffer allocation inside a loop body (ERT014).
LOOP_ALLOC = "loop-alloc"
#: ``SharedMemory(create=True)`` construction site (ERT015).
SHM_CREATE = "shm-create"
#: ``SharedMemory(name=...)`` attach site (ERT015).
SHM_ATTACH = "shm-attach"
#: ``.submit(<lambda>)`` -- the callable cannot cross a pool boundary
#: without dragging its closure along (ERT016).
SUBMIT_LAMBDA = "submit-lambda"
#: ``.submit(<nested def>)`` -- a closure over the enclosing frame.
SUBMIT_CLOSURE = "submit-closure"
#: ``.submit(self.method)`` -- a bound method pickles its whole receiver.
SUBMIT_BOUND = "submit-bound"

# -- function flags ----------------------------------------------------

#: The function stores the created segment into ``_LIVE_SEGMENTS``.
REGISTERS_SEGMENT = "registers-segment"
#: An except/finally cleanup path calls ``.unlink()``.
UNLINK_IN_CLEANUP = "unlink-in-cleanup"
#: An except/finally cleanup path calls ``.close()``.
CLOSE_IN_CLEANUP = "close-in-cleanup"

#: Telemetry entry points, by qualified prefix / conventional root --
#: the same predicate ERT007 applies to annotated-hot functions.
_TELEMETRY_ROOTS = frozenset({"telemetry", "metrics"})

#: numpy constructors that allocate a fresh buffer (ERT014).  Views and
#: wrappers (``asarray``, ``frombuffer``) are deliberately absent, as are
#: the vectorized-op temporaries (``where``, ``maximum``): those belong
#: to ERT013's vectorize-the-loop story, not the reuse-a-workspace one.
_NUMPY_ALLOCATORS = frozenset({
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "array", "arange", "concatenate", "stack",
    "vstack", "hstack", "column_stack", "tile", "repeat", "linspace",
})

#: Builtin constructors counted as list-building when called in a loop.
_BUILTIN_ALLOCATORS = frozenset({"list", "dict", "set", "bytearray"})

#: Qualified names constructing a shared-memory segment (mirrors ERT008).
_SHM_CTORS = frozenset({
    "multiprocessing.shared_memory.SharedMemory",
    "shared_memory.SharedMemory",
})

#: Qualified names constructing a worker pool (for ``initializer=``
#: capture checks).
_POOL_CTORS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
})


@dataclass(frozen=True)
class CallSite:
    """One call expression, with its best-effort dotted target."""

    target: str
    line: int
    col: int


@dataclass(frozen=True)
class Fact:
    """One rule-relevant observation inside a function body."""

    kind: str
    line: int
    col: int
    end_line: int
    detail: str = ""


@dataclass(frozen=True)
class FunctionSymbol:
    """One module-level function or method."""

    qualname: str
    module: str
    path: str
    name: str
    cls: "Optional[str]"
    line: int
    end_line: int
    hot: bool
    calls: "Tuple[CallSite, ...]" = ()
    facts: "Tuple[Fact, ...]" = ()
    flags: "frozenset[str]" = frozenset()


@dataclass(frozen=True)
class ClassSymbol:
    """One module-level class (methods live in the function table)."""

    qualname: str
    module: str
    name: str
    line: int
    bases: "Tuple[str, ...]" = ()
    methods: "Tuple[str, ...]" = ()


@dataclass(frozen=True)
class ModuleSummary:
    """Everything pass 2 needs to know about one file."""

    module: str
    path: str
    #: Local name -> dotted import target (the re-export table).
    exports: "Dict[str, str]" = field(default_factory=dict)
    functions: "Tuple[FunctionSymbol, ...]" = ()
    classes: "Tuple[ClassSymbol, ...]" = ()


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def _attr_chain(node: ast.AST) -> "Optional[Tuple[str, Tuple[str, ...]]]":
    """Decompose ``root.a.b`` into (root, (a, b)); None for non-chains."""
    attrs: "List[str]" = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    return node.id, tuple(reversed(attrs))


def _annotation_dotted(annotation: "ast.expr | None",
                       src: "SourceFile") -> "Optional[str]":
    """Dotted name of a simple annotation (``TreeCursor``,
    ``np.ndarray``, ``"ErtIndex"``); None for unions/subscripts."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        if not text or not all(part.isidentifier()
                               for part in text.split(".")):
            return None
        root, _, rest = text.partition(".")
        resolved = src.imports.get(root, root)
        return f"{resolved}.{rest}" if rest else resolved
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        return src.qualified_name(annotation)
    return None


def _is_telemetry_call(qual: str) -> bool:
    root = qual.split(".", 1)[0]
    return qual.startswith("repro.telemetry.") or root in _TELEMETRY_ROOTS


class _FunctionScanner:
    """Collects call sites and facts from one function body.

    Nested ``def``s and lambdas are scanned as part of their enclosing
    function (their code only runs if the enclosing function calls it --
    a conservative attribution for hot propagation); their *names* are
    tracked so executor submissions of closures can be recognised.
    """

    def __init__(self, src: "SourceFile", func: ast.AST,
                 cls: "Optional[str]") -> None:
        self.src = src
        self.func = func
        self.cls = cls
        self.calls: "List[CallSite]" = []
        self.facts: "List[Fact]" = []
        self.flags: "Set[str]" = set()
        self.nested_defs: "Set[str]" = set()
        self.arrays: "Set[str]" = set()
        self.vartypes: "Dict[str, str]" = {}
        self.locals: "Set[str]" = set()
        self._prepass()

    # -- local inference ----------------------------------------------

    def _prepass(self) -> None:
        """Seed local knowledge: nested defs, annotated params, and
        ``x = ctor(...)`` assignments (two rounds, so one level of
        forward propagation through binops/slices converges)."""
        args = getattr(self.func, "args", None)
        if args is not None:
            params = list(args.posonlyargs) + list(args.args) \
                + list(args.kwonlyargs)
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    params.append(extra)
            for param in params:
                self.locals.add(param.arg)
                dotted = _annotation_dotted(param.annotation, self.src)
                if dotted is None:
                    continue
                if dotted == "numpy.ndarray" or dotted.endswith(".ndarray"):
                    self.arrays.add(param.arg)
                else:
                    self.vartypes[param.arg] = dotted
        for node in ast.walk(self.func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not self.func:
                self.nested_defs.add(node.name)
        for _ in range(2):
            for node in ast.walk(self.func):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    self.locals.add(target.id)
                    if self._is_array_expr(value):
                        self.arrays.add(target.id)
                        continue
                    dotted = self._constructed_type(value)
                    if dotted is not None:
                        self.vartypes[target.id] = dotted

    def _constructed_type(self, value: ast.expr) -> "Optional[str]":
        """Dotted class name for ``x = SomeClass(...)`` (heuristic: the
        constructor's last segment is Capitalized)."""
        if not isinstance(value, ast.Call):
            return None
        qual = self.src.qualified_name(value.func)
        if qual is None:
            return None
        last = qual.rsplit(".", 1)[-1]
        if last[:1].isupper():
            return qual
        return None

    def _is_array_expr(self, node: ast.expr) -> bool:
        """Does this expression evaluate to an ndarray, as far as local
        inference can tell?"""
        if isinstance(node, ast.Name):
            return node.id in self.arrays
        if isinstance(node, ast.Call):
            qual = self.src.qualified_name(node.func)
            return qual is not None and qual.startswith("numpy.")
        if isinstance(node, ast.Subscript):
            # Slicing an array yields an array; scalar indexing does not.
            return (isinstance(node.slice, ast.Slice)
                    and self._is_array_expr(node.value))
        if isinstance(node, ast.BinOp):
            return (self._is_array_expr(node.left)
                    or self._is_array_expr(node.right))
        if isinstance(node, ast.UnaryOp):
            return self._is_array_expr(node.operand)
        if isinstance(node, ast.IfExp):
            return (self._is_array_expr(node.body)
                    or self._is_array_expr(node.orelse))
        return False

    # -- call-target resolution ---------------------------------------

    def _call_target(self, func: ast.expr) -> "Optional[str]":
        chain = _attr_chain(func)
        if chain is None:
            return None
        root, attrs = chain
        if not attrs:
            if root in self.nested_defs or root in self.locals:
                return None
            resolved = self.src.imports.get(root)
            if resolved is not None:
                return resolved
            return f"{self.src.module}.{root}" if self.src.module else root
        if root in ("self", "cls") and self.cls is not None:
            base = f"{self.src.module}.{self.cls}" if self.src.module \
                else self.cls
            return ".".join((base,) + attrs)
        if root in self.vartypes:
            return ".".join((self.vartypes[root],) + attrs)
        if root in self.locals:
            return None
        return self.src.qualified_name(func)

    # -- the scan ------------------------------------------------------

    def scan(self) -> None:
        body = getattr(self.func, "body", [])
        for stmt in body:
            self._visit(stmt, in_loop=False)

    def _visit(self, node: ast.AST, in_loop: bool) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_ndarray_loop(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child, in_loop=True)
            return
        if isinstance(node, ast.While):
            for child in ast.iter_child_nodes(node):
                self._visit(child, in_loop=True)
            return
        if isinstance(node, ast.Call):
            self._check_call(node, in_loop)
        elif isinstance(node, ast.Assign):
            self._check_registration(node)
        elif isinstance(node, (ast.ExceptHandler, ast.Try)):
            self._check_cleanup(node)
        for child in ast.iter_child_nodes(node):
            self._visit(child, in_loop)

    def _fact(self, kind: str, node: ast.AST, detail: str = "") -> None:
        line = getattr(node, "lineno", 0)
        self.facts.append(Fact(
            kind=kind, line=line, col=getattr(node, "col_offset", 0) + 1,
            end_line=getattr(node, "end_lineno", None) or line,
            detail=detail))

    def _check_call(self, node: ast.Call, in_loop: bool) -> None:
        qual = self._call_target(node.func)
        if qual is not None:
            self.calls.append(CallSite(target=qual, line=node.lineno,
                                       col=node.col_offset + 1))
            if _is_telemetry_call(qual):
                self._fact(TELEMETRY_CALL, node, detail=qual)
            if qual in _SHM_CTORS:
                self._check_shm(node)
            if in_loop and self._is_allocator(node, qual):
                self._fact(LOOP_ALLOC, node, detail=qual)
            if qual in _POOL_CTORS:
                self._check_pool_ctor(node)
        elif in_loop and self._is_allocator(node, None):
            self._fact(LOOP_ALLOC, node,
                       detail=self.src.qualified_name(node.func) or "list")
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit" and node.args):
            self._check_submit_arg(node, node.args[0])

    def _is_allocator(self, node: ast.Call, qual: "Optional[str]") -> bool:
        if qual is not None and qual.startswith("numpy."):
            return qual.rsplit(".", 1)[-1] in _NUMPY_ALLOCATORS
        func = node.func
        return (isinstance(func, ast.Name)
                and func.id in _BUILTIN_ALLOCATORS
                and self.src.imports.get(func.id, func.id) == func.id)

    def _check_shm(self, node: ast.Call) -> None:
        create = any(kw.arg == "create"
                     and isinstance(kw.value, ast.Constant)
                     and kw.value.value is True
                     for kw in node.keywords)
        self._fact(SHM_CREATE if create else SHM_ATTACH, node)

    def _check_pool_ctor(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "initializer":
                self._check_submit_arg(node, kw.value)

    def _check_submit_arg(self, call: ast.Call, arg: ast.expr) -> None:
        """Is the callable handed to an executor capture-safe?"""
        if isinstance(arg, ast.Lambda):
            self._fact(SUBMIT_LAMBDA, call)
            return
        if isinstance(arg, ast.Name) and arg.id in self.nested_defs:
            self._fact(SUBMIT_CLOSURE, call, detail=arg.id)
            return
        if isinstance(arg, ast.Attribute):
            chain = _attr_chain(arg)
            if chain is not None and chain[0] in ("self", "cls"):
                self._fact(SUBMIT_BOUND, call,
                           detail=".".join((chain[0],) + chain[1]))

    def _check_registration(self, node: ast.Assign) -> None:
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "_LIVE_SEGMENTS"):
                self.flags.add(REGISTERS_SEGMENT)

    def _check_cleanup(self, node: ast.AST) -> None:
        """except handlers and finally blocks count as the cleanup path
        for the shm lifecycle rule."""
        bodies: "List[List[ast.stmt]]" = []
        if isinstance(node, ast.ExceptHandler):
            bodies.append(node.body)
        elif isinstance(node, ast.Try) and node.finalbody:
            bodies.append(node.finalbody)
        for body in bodies:
            for stmt in body:
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)):
                        if sub.func.attr == "unlink":
                            self.flags.add(UNLINK_IN_CLEANUP)
                        elif sub.func.attr == "close":
                            self.flags.add(CLOSE_IN_CLEANUP)

    def _check_ndarray_loop(self, node: "ast.For | ast.AsyncFor") -> None:
        iterable = node.iter
        # `for i, x in enumerate(xs)` iterates xs.
        if (isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "enumerate" and iterable.args):
            iterable = iterable.args[0]
        if self._is_array_expr(iterable):
            self._fact(NDARRAY_LOOP, node,
                       detail="iterates element-wise over an ndarray")
            return
        if not (isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "range"):
            return
        loop_vars = self._loop_vars(node.target)
        if not loop_vars:
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.For, ast.AsyncFor)):
                    continue
                if (isinstance(sub, ast.Subscript)
                        and isinstance(sub.slice, ast.Name)
                        and sub.slice.id in loop_vars
                        and self._is_array_expr(sub.value)):
                    name = sub.value.id if isinstance(sub.value, ast.Name) \
                        else "an ndarray"
                    self._fact(NDARRAY_LOOP, sub,
                               detail=f"indexes {name} element-by-element "
                                      f"with loop variable "
                                      f"'{sub.slice.id}'")
                    return

    @staticmethod
    def _loop_vars(target: ast.expr) -> "Set[str]":
        names: "Set[str]" = set()
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                names.add(node.id)
        return names


# ----------------------------------------------------------------------
# Module walk
# ----------------------------------------------------------------------


def _iter_functions(tree: ast.AST) \
        -> "Iterator[Tuple[ast.AST, Optional[str]]]":
    """Module-level functions and class methods (one nesting level --
    matching how this repository lays out code)."""
    body = getattr(tree, "body", [])
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt, None
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, stmt.name


def summarize(src: "SourceFile") -> ModuleSummary:
    """Reduce ``src`` to the picklable per-file record pass 2 consumes."""
    module = src.module or ""
    functions: "List[FunctionSymbol]" = []
    classes: "List[ClassSymbol]" = []
    for stmt in getattr(src.tree, "body", []):
        if not isinstance(stmt, ast.ClassDef):
            continue
        bases: "List[str]" = []
        for base in stmt.bases:
            dotted = src.qualified_name(base)
            if dotted is None:
                continue
            if "." not in dotted and module:
                dotted = f"{module}.{dotted}"
            bases.append(dotted)
        methods = tuple(sub.name for sub in stmt.body
                        if isinstance(sub, (ast.FunctionDef,
                                            ast.AsyncFunctionDef)))
        classes.append(ClassSymbol(
            qualname=f"{module}.{stmt.name}" if module else stmt.name,
            module=module, name=stmt.name, line=stmt.lineno,
            bases=tuple(bases), methods=methods))
    for func, cls in _iter_functions(src.tree):
        name = getattr(func, "name", "<function>")
        parts = [p for p in (module, cls, name) if p]
        scanner = _FunctionScanner(src, func, cls)
        scanner.scan()
        functions.append(FunctionSymbol(
            qualname=".".join(parts), module=module, path=src.path,
            name=name, cls=cls, line=func.lineno,
            end_line=getattr(func, "end_lineno", None) or func.lineno,
            hot=src.pragmas.is_hot(func.lineno),
            calls=tuple(scanner.calls), facts=tuple(scanner.facts),
            flags=frozenset(scanner.flags)))
    return ModuleSummary(module=module, path=src.path,
                         exports=dict(src.imports),
                         functions=tuple(functions),
                         classes=tuple(classes))


__all__ = [
    "CallSite",
    "ClassSymbol",
    "Fact",
    "FunctionSymbol",
    "ModuleSummary",
    "summarize",
    "TELEMETRY_CALL",
    "NDARRAY_LOOP",
    "LOOP_ALLOC",
    "SHM_CREATE",
    "SHM_ATTACH",
    "SUBMIT_LAMBDA",
    "SUBMIT_CLOSURE",
    "SUBMIT_BOUND",
    "REGISTERS_SEGMENT",
    "UNLINK_IN_CLEANUP",
    "CLOSE_IN_CLEANUP",
]
