"""Baseline files: land strict rules without a mass-annotation commit.

``ert-repro check --update-baseline`` snapshots the current violations
into a JSON file; ``--baseline FILE`` then waives exactly those on later
runs, so a new rule is strict for new code while the existing debt is
tracked in one reviewable artifact instead of a hundred pragmas.

Violations are matched by **fingerprint**, not line number:
``sha1(rule | normalized path | stripped source line text)``.  Adding
code above a baselined violation moves its line but not its fingerprint;
editing the offending line itself invalidates the waiver, which is the
point -- touched debt must be paid (or re-baselined deliberately).
Identical lines (same rule, file, and text) are disambiguated by count:
a baseline recording two occurrences waives at most two.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.checks.engine import CheckReport
from repro.checks.violations import Violation

#: Default baseline filename, resolved against the working directory.
DEFAULT_BASELINE = "checks-baseline.json"

#: Schema version of the baseline document.
BASELINE_VERSION = 1


def _normalized_path(path: str) -> str:
    normalized = os.path.normpath(path).replace(os.sep, "/")
    return normalized[2:] if normalized.startswith("./") else normalized


class _LineCache:
    """Lazy path -> source lines lookup shared across fingerprints."""

    def __init__(self) -> None:
        self._lines: "Dict[str, List[str]]" = {}

    def line_text(self, path: str, line: int) -> str:
        if path not in self._lines:
            try:
                with open(path, encoding="utf-8",
                          errors="replace") as handle:
                    self._lines[path] = handle.read().splitlines()
            except OSError:
                self._lines[path] = []
        lines = self._lines[path]
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""


def fingerprint(violation: Violation,
                cache: "Optional[_LineCache]" = None) -> str:
    """Stable identity of a violation across unrelated edits."""
    cache = cache or _LineCache()
    text = cache.line_text(violation.path, violation.line)
    payload = (f"{violation.rule}|{_normalized_path(violation.path)}"
               f"|{text}")
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def _fingerprint_all(violations: "Iterable[Violation]"
                     ) -> "List[Tuple[str, Violation]]":
    cache = _LineCache()
    return [(fingerprint(v, cache), v) for v in violations]


def baseline_document(report: CheckReport) -> "Dict[str, object]":
    """The report's violations as a baseline document."""
    entries: "Dict[str, Dict[str, object]]" = {}
    for print_, violation in _fingerprint_all(report.violations):
        entry = entries.setdefault(print_, {
            "fingerprint": print_,
            "rule": violation.rule,
            "path": _normalized_path(violation.path),
            "count": 0,
        })
        entry["count"] = int(entry["count"]) + 1  # type: ignore[call-overload]
    return {
        "version": BASELINE_VERSION,
        "tool": "ert-repro-check",
        "entries": sorted(entries.values(),
                          key=lambda e: (str(e["path"]), str(e["rule"]),
                                         str(e["fingerprint"]))),
    }


def write_baseline(path: str, report: CheckReport) -> int:
    """Write the baseline for ``report``; returns the entry count."""
    document = baseline_document(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return len(document["entries"])  # type: ignore[arg-type]


def load_baseline(path: str) -> "Dict[str, int]":
    """Fingerprint -> allowed occurrence count from a baseline file.

    Raises ``ValueError`` on a malformed or wrong-version document so
    the CLI can exit 2 (bad invocation) instead of silently passing.
    """
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) \
            or document.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a version-{BASELINE_VERSION} baseline document")
    allowed: "Dict[str, int]" = {}
    for entry in document.get("entries", []):
        print_ = entry.get("fingerprint")
        if isinstance(print_, str):
            allowed[print_] = allowed.get(print_, 0) \
                + max(int(entry.get("count", 1)), 1)
    return allowed


def apply_baseline(report: CheckReport,
                   allowed: "Dict[str, int]") -> CheckReport:
    """Drop baselined violations from ``report`` (in place).

    ``report.baselined`` counts what was waived, so the debt stays
    visible in the summary line and the JSON/SARIF property bags.
    """
    remaining = dict(allowed)
    kept: "List[Violation]" = []
    for print_, violation in _fingerprint_all(report.violations):
        if remaining.get(print_, 0) > 0:
            remaining[print_] -= 1
            report.baselined += 1
        else:
            kept.append(violation)
    report.violations = kept
    return report


__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE",
    "apply_baseline",
    "baseline_document",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]
