"""Reporters: the human text listing and the machine JSON document."""

from __future__ import annotations

import json

from repro.checks.engine import CheckReport

#: Schema version of the JSON document; bump on incompatible change.
#: v2 added the ``baselined`` count (violations waived by --baseline).
JSON_SCHEMA_VERSION = 2


def render_text(report: CheckReport) -> str:
    """One line per violation plus a summary line (empty-safe)."""
    lines = [violation.format() for violation in report.violations]
    counts = report.counts_by_rule()
    if counts:
        breakdown = ", ".join(f"{rule} x{n}" for rule, n in counts.items())
        summary = (f"{len(report.violations)} violation(s) in "
                   f"{report.files_checked} file(s) [{breakdown}]")
    else:
        summary = (f"ok: {report.files_checked} file(s) clean")
    if report.suppressed:
        summary += f" ({report.suppressed} suppressed by pragma)"
    if report.baselined:
        summary += f" ({report.baselined} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def report_as_dict(report: CheckReport) -> "dict[str, object]":
    """The JSON-ready document (see ``docs/static_analysis.md``)."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "violation_count": len(report.violations),
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "counts": report.counts_by_rule(),
        "violations": [v.as_dict() for v in report.violations],
    }


def render_json(report: CheckReport) -> str:
    return json.dumps(report_as_dict(report), indent=2, sort_keys=False)
