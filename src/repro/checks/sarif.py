"""SARIF 2.1.0 export for checker reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests, so a CI step can
upload the checker's findings and have them annotate PR diffs inline.
The document carries one run with the full rule catalogue in
``tool.driver.rules`` (ids, short/full descriptions, scope in the
property bag) and one ``result`` per violation with a physical location.

Stdlib-only, like the rest of :mod:`repro.checks`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.checks.engine import PARSE_RULE, CheckReport, Rule, all_rules
from repro.checks.violations import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Synthetic descriptor for files the parser rejects (no registered
#: Rule object exists for it).
_PARSE_DESCRIPTOR: "Dict[str, Any]" = {
    "id": PARSE_RULE,
    "name": "ParseError",
    "shortDescription": {"text": "file failed to parse"},
    "fullDescription": {
        "text": "The Python parser rejected this file; no rule can run "
                "until it parses."},
    "defaultConfiguration": {"level": "error"},
}


def _artifact_uri(path: str) -> str:
    """Repository-relative, ``/``-separated URI for a violation path."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    # SARIF wants relative URIs when uriBaseId is implied; strip any
    # leading "./" the normalizer left behind.
    if normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized


def _rule_descriptor(rule: Rule) -> "Dict[str, Any]":
    properties: "Dict[str, Any]" = {
        "pragma": f"# repro: allow({rule.id})",
    }
    if rule.scope is not None:
        properties["scope"] = list(rule.scope)
    if rule.exclude_scope:
        properties["excludeScope"] = list(rule.exclude_scope)
    return {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": "error"},
        "properties": properties,
    }


def _result(violation: Violation,
            rule_index: "Dict[str, int]") -> "Dict[str, Any]":
    region: "Dict[str, Any]" = {
        "startLine": max(violation.line, 1),
        "startColumn": max(violation.col, 1),
    }
    if violation.end_line and violation.end_line >= violation.line:
        region["endLine"] = violation.end_line
    result: "Dict[str, Any]" = {
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": _artifact_uri(violation.path),
                },
                "region": region,
            },
        }],
    }
    index = rule_index.get(violation.rule)
    if index is not None:
        result["ruleIndex"] = index
    return result


def sarif_document(report: CheckReport,
                   rules: "Optional[Iterable[Rule]]" = None
                   ) -> "Dict[str, Any]":
    """The report as a SARIF 2.1.0 document (a plain dict)."""
    rule_list = all_rules() if rules is None else list(rules)
    descriptors: "List[Dict[str, Any]]" = [
        _rule_descriptor(rule) for rule in rule_list]
    if any(v.rule == PARSE_RULE for v in report.violations):
        descriptors.append(dict(_PARSE_DESCRIPTOR))
    rule_index = {desc["id"]: i for i, desc in enumerate(descriptors)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "ert-repro-check",
                    "informationUri":
                        "https://example.invalid/ert-repro/static-analysis",
                    "rules": descriptors,
                },
            },
            "results": [_result(v, rule_index)
                        for v in report.violations],
            "properties": {
                "filesChecked": report.files_checked,
                "suppressed": report.suppressed,
                "baselined": report.baselined,
            },
        }],
    }


def render_sarif(report: CheckReport,
                 rules: "Optional[Iterable[Rule]]" = None) -> str:
    """The report as serialized SARIF 2.1.0 JSON."""
    return json.dumps(sarif_document(report, rules), indent=2,
                      sort_keys=False)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif",
           "sarif_document"]
