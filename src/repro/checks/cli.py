"""The ``ert-repro check`` subcommand.

Exit codes: 0 clean, 1 violations found, 2 bad invocation (argparse,
unknown rule ids, unreadable/malformed baseline).
Kept separate from :mod:`repro.cli` so ``python -m repro.checks.cli``
works on a tree where the heavy numeric packages will not even import.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List

from repro.checks.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.checks.engine import (
    DEFAULT_EXCLUDES,
    ProjectRule,
    Rule,
    all_rules,
    run_checks,
)
from repro.checks.report import render_json, render_text
from repro.checks.sarif import render_sarif

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _positive_jobs(value: str) -> int:
    jobs = int(value)
    if jobs < 0:
        raise argparse.ArgumentTypeError("--jobs must be >= 0")
    return jobs


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` arguments (shared by the standalone entry
    point and the ``ert-repro`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to check "
             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); sarif emits a SARIF 2.1.0 "
             "document for code-scanning upload")
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="GLOB",
        help=f"extra path patterns to skip (defaults always apply: "
             f"{', '.join(DEFAULT_EXCLUDES)})")
    parser.add_argument(
        "--jobs", type=_positive_jobs, default=1, metavar="N",
        help="parallelize the per-file pass over N worker processes "
             "(0 = cpu count; output is identical at any N)")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"waive the violations recorded in FILE "
             f"(see --update-baseline; conventional name: "
             f"{DEFAULT_BASELINE})")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current violations to the baseline file "
             "(--baseline FILE, default ./checks-baseline.json) and "
             "exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (respects --rules and "
             "--format json) and exit")


def _selected_rules(args: argparse.Namespace) -> "List[Rule] | None":
    """Rules after the --rules filter; None means exit 2 (printed)."""
    rules = all_rules()
    if not args.rules:
        return rules
    wanted = {rule_id.strip() for rule_id in args.rules.split(",")
              if rule_id.strip()}
    known = {rule.id for rule in rules}
    unknown = wanted - known
    if unknown:
        print(f"unknown rule id(s): {', '.join(sorted(unknown))} "
              f"(known: {', '.join(sorted(known))})", file=sys.stderr)
        return None
    return [rule for rule in rules if rule.id in wanted]


def _list_rules(rules: "List[Rule]", fmt: str) -> int:
    if fmt == "json":
        catalogue = [{
            "id": rule.id,
            "title": rule.title,
            "rationale": rule.rationale,
            "kind": "project" if isinstance(rule, ProjectRule)
                    else "file",
            "scope": list(rule.scope) if rule.scope else None,
            "exclude_scope": list(rule.exclude_scope),
            "pragma": f"# repro: allow({rule.id})",
        } for rule in rules]
        print(json.dumps(catalogue, indent=2))
        return 0
    for rule in rules:
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        if rule.exclude_scope:
            scope += f" (except {', '.join(rule.exclude_scope)})"
        kind = "project" if isinstance(rule, ProjectRule) else "file"
        print(f"{rule.id}  {rule.title}")
        print(f"        pass:   {kind}")
        print(f"        scope:  {scope}")
        print(f"        pragma: # repro: allow({rule.id})")
        print(f"        why:    {rule.rationale}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute a configured ``check`` invocation; returns the exit code."""
    rules = _selected_rules(args)
    if rules is None:
        return 2
    if args.list_rules:
        return _list_rules(rules, args.format)
    excludes = DEFAULT_EXCLUDES + tuple(args.exclude or ())
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    report = run_checks(args.paths, rules=rules, excludes=excludes,
                        jobs=jobs)
    if args.update_baseline:
        baseline_path = args.baseline or DEFAULT_BASELINE
        entries = write_baseline(baseline_path, report)
        print(f"baseline: {entries} entr{'y' if entries == 1 else 'ies'} "
              f"({len(report.violations)} violation(s)) -> "
              f"{baseline_path}")
        return 0
    if args.baseline:
        try:
            allowed = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        apply_baseline(report, allowed)
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report, rules))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ert-repro check",
        description="run the repository's static-analysis rules")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
