"""The ``ert-repro check`` subcommand.

Exit codes: 0 clean, 1 violations found, 2 bad invocation (argparse).
Kept separate from :mod:`repro.cli` so ``python -m repro.checks.cli``
works on a tree where the heavy numeric packages will not even import.
"""

from __future__ import annotations

import argparse
import sys

from repro.checks.engine import (
    DEFAULT_EXCLUDES,
    all_rules,
    run_checks,
)
from repro.checks.report import render_json, render_text

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the ``check`` arguments (shared by the standalone entry
    point and the ``ert-repro`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files or directories to check "
             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="GLOB",
        help=f"extra path patterns to skip (defaults always apply: "
             f"{', '.join(DEFAULT_EXCLUDES)})")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")


def run(args: argparse.Namespace) -> int:
    """Execute a configured ``check`` invocation; returns the exit code."""
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            scope = ", ".join(rule.scope) if rule.scope else "everywhere"
            print(f"{rule.id}  {rule.title}")
            print(f"        scope: {scope}")
            print(f"        why:   {rule.rationale}")
        return 0
    if args.rules:
        wanted = {rule_id.strip() for rule_id in args.rules.split(",")
                  if rule_id.strip()}
        known = {rule.id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))} "
                  f"(known: {', '.join(sorted(known))})", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.id in wanted]
    excludes = DEFAULT_EXCLUDES + tuple(args.exclude or ())
    report = run_checks(args.paths, rules=rules, excludes=excludes)
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ert-repro check",
        description="run the repository's static-analysis rules")
    configure_parser(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
