"""Pass 2 of the whole-program analyzer: the project call graph.

A :class:`ProjectGraph` indexes every :class:`~repro.checks.symbols.
ModuleSummary` from pass 1 and resolves the dotted call targets recorded
there into project symbols.  Resolution is deliberately conservative --
an edge exists only when the target provably names a function in the
project -- so the transitive-hot closure under-approximates reality
rather than flooding the tree with false positives.

Resolution handles the three indirections this codebase actually uses:

* **aliased imports** -- pass 1 already rewrote ``eng.seed_read`` to
  ``repro.core.engine.ErtSeedingEngine.seed_read`` through the per-file
  import table and local type inference;
* **re-export chains** -- ``repro.core.ErtIndex`` hops through
  ``repro/core/__init__.py``'s import table to
  ``repro.core.index.ErtIndex`` (cycle-guarded, bounded depth);
* **methods** -- ``pkg.mod.Cls.meth`` finds the method on ``Cls`` or,
  failing that, one level up through ``Cls``'s listed bases; calling a
  class resolves to its ``__init__``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.checks.symbols import ClassSymbol, FunctionSymbol, ModuleSummary

#: Bound on export-chain hops; real chains here are 1-2 deep.
_MAX_HOPS = 8


class ProjectGraph:
    """Symbol table + call graph over one set of module summaries."""

    def __init__(self, summaries: "List[ModuleSummary]") -> None:
        self.modules: "Dict[str, ModuleSummary]" = {}
        self.functions: "Dict[str, FunctionSymbol]" = {}
        self.classes: "Dict[str, ClassSymbol]" = {}
        for summary in summaries:
            if summary.module:
                self.modules[summary.module] = summary
            for fn in summary.functions:
                self.functions[fn.qualname] = fn
            for cls in summary.classes:
                self.classes[cls.qualname] = cls
        #: caller qualname -> resolved callee qualnames (sorted, unique).
        self.edges: "Dict[str, Tuple[str, ...]]" = {}
        for qualname, fn in self.functions.items():
            callees: "Set[str]" = set()
            for call in fn.calls:
                resolved = self.resolve_call(call.target)
                if resolved is not None and resolved != qualname:
                    callees.add(resolved)
            self.edges[qualname] = tuple(sorted(callees))

    # -- resolution ----------------------------------------------------

    def resolve_call(self, dotted: "Optional[str]") -> "Optional[str]":
        """Project function a call on ``dotted`` lands in, or None.

        Calling a class resolves to its ``__init__`` (searching listed
        bases), so constructor bodies join the hot closure.
        """
        hit = self._lookup(dotted, hops=0)
        if hit is None:
            return None
        kind, qualname = hit
        if kind == "function":
            return qualname
        return self._method_on(qualname, "__init__", set())

    def resolve_class(self, dotted: "Optional[str]") -> "Optional[str]":
        """Project class ``dotted`` names, following re-export chains."""
        hit = self._lookup(dotted, hops=0)
        if hit is not None and hit[0] == "class":
            return hit[1]
        return None

    def _lookup(self, dotted: "Optional[str]",
                hops: int) -> "Optional[Tuple[str, str]]":
        """Resolve ``dotted`` to ``("function" | "class", qualname)``."""
        if dotted is None or hops > _MAX_HOPS:
            return None
        if dotted in self.functions:
            return "function", dotted
        if dotted in self.classes:
            return "class", dotted
        head, _, tail = dotted.rpartition(".")
        if head and tail:
            # ``pkg.mod.Cls.meth``: a method on a known class (or base).
            if head in self.classes:
                method = self._method_on(head, tail, set())
                if method is not None:
                    return "function", method
            # Re-export hop: find a module prefix whose import table
            # maps the next segment elsewhere, and follow it.
            parts = dotted.split(".")
            for split in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:split])
                summary = self.modules.get(prefix)
                if summary is None:
                    continue
                target = summary.exports.get(parts[split])
                if target is None or target == dotted:
                    continue
                rest = parts[split + 1:]
                rerouted = ".".join([target] + rest) if rest else target
                hit = self._lookup(rerouted, hops + 1)
                if hit is not None:
                    return hit
        return None

    def _method_on(self, cls_qualname: str, name: str,
                   seen: "Set[str]") -> "Optional[str]":
        """Find method ``name`` on a class or (recursively) its bases."""
        if cls_qualname in seen:
            return None
        seen.add(cls_qualname)
        cls = self.classes.get(cls_qualname)
        if cls is None:
            return None
        if name in cls.methods:
            return f"{cls_qualname}.{name}"
        for base in cls.bases:
            base_cls = self.resolve_class(base)
            if base_cls is None:
                continue
            found = self._method_on(base_cls, name, seen)
            if found is not None:
                return found
        return None

    # -- hot propagation -----------------------------------------------

    def hot_paths(self) -> "Dict[str, Tuple[str, ...]]":
        """Every function reachable from a ``# repro: hot`` root, mapped
        to one call chain ``(root, ..., function)`` that reaches it.

        Deterministic: BFS from roots in sorted order over sorted edges,
        so the recorded chain (used in ERT012-ERT014 messages) is stable
        across runs and ``--jobs`` settings.
        """
        paths: "Dict[str, Tuple[str, ...]]" = {}
        queue: "deque[str]" = deque()
        for qualname in sorted(self.functions):
            if self.functions[qualname].hot:
                paths[qualname] = (qualname,)
                queue.append(qualname)
        while queue:
            current = queue.popleft()
            for callee in self.edges.get(current, ()):
                if callee not in paths:
                    paths[callee] = paths[current] + (callee,)
                    queue.append(callee)
        return paths


def build_graph(summaries: "List[ModuleSummary]") -> ProjectGraph:
    """Convenience constructor matching the engine's call site."""
    return ProjectGraph(summaries)


__all__ = ["ProjectGraph", "build_graph"]
