"""The rule engine: source-file context, rule registry, and the runner.

A :class:`SourceFile` bundles everything a rule needs -- the parsed AST
(with parent links), the logical module name (derived from the
``__init__.py`` chain on disk, overridable via ``# repro: module(...)``),
an import-alias table for resolving dotted names, and the pragma index.
Rules are small classes registered by id; :func:`run_checks` walks the
requested paths and aggregates a :class:`CheckReport`.

The runner makes **two passes**.  Pass 1 visits every file
independently: it runs the per-file rules and reduces the file to a
picklable :class:`FileScan` (violations + a
:class:`~repro.checks.symbols.ModuleSummary` of its functions, call
sites, and rule-relevant facts).  Because pass 1 carries no AST state
across files, ``run_checks(jobs=N)`` can farm it out to worker
processes and still produce byte-identical reports.  Pass 2 assembles
the summaries into a :class:`~repro.checks.callgraph.ProjectGraph` and
runs every registered :class:`ProjectRule` over it -- the whole-program
rules (ERT012-ERT016) that need cross-file facts like transitive
hotness or shm create/unlink pairing.  Suppression stays file-local:
a project-rule violation is silenced by the pragmas of the file it
points into.
"""

from __future__ import annotations

import ast
import fnmatch
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.checks.pragmas import FilePragmas, parse_pragmas
from repro.checks.violations import Violation

if TYPE_CHECKING:  # pragma: no cover -- avoid an import cycle at runtime
    from repro.checks.callgraph import ProjectGraph
    from repro.checks.symbols import ModuleSummary

#: Paths matching any of these (fnmatch, against ``/``-separated paths)
#: are skipped by default; the fixture corpus deliberately violates every
#: rule, so a tree-wide run must not trip over it.
DEFAULT_EXCLUDES: "tuple[str, ...]" = (
    "*/fixtures/*",
    "*/__pycache__/*",
    "*/.git/*",
)

#: Rule id used for files the parser rejects outright.
PARSE_RULE = "PARSE"


def module_name_for_path(path: str) -> "str | None":
    """Logical dotted module for ``path``, derived from the package
    (``__init__.py``) chain on disk.

    ``src/repro/core/layout.py`` -> ``repro.core.layout``;
    a stray script outside any package resolves to its bare stem.
    """
    abspath = os.path.abspath(path)
    directory, filename = os.path.split(abspath)
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts: "list[str]" = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, pkg = os.path.split(directory)
        parts.insert(0, pkg)
    return ".".join(parts) if parts else None


class SourceFile:
    """One parsed source file plus the lookup structures rules share."""

    def __init__(self, path: str, source: str,
                 module: "str | None" = None) -> None:
        self.path = path
        self.source = source
        self.pragmas: FilePragmas = parse_pragmas(source)
        self.module: "str | None" = (
            self.pragmas.module_override
            or module
            or module_name_for_path(path))
        self.tree: ast.AST = ast.parse(source, filename=path)
        self._parents: "dict[ast.AST, ast.AST]" = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.imports: "dict[str, str]" = self._build_import_table()

    # -- navigation ----------------------------------------------------

    def parent(self, node: ast.AST) -> "ast.AST | None":
        return self._parents.get(node)

    def walk(self) -> "Iterator[ast.AST]":
        return ast.walk(self.tree)

    # -- name resolution -----------------------------------------------

    def _build_import_table(self) -> "dict[str, str]":
        """Map local names to the fully qualified names they import.

        ``import numpy as np`` -> ``np: numpy``;
        ``from time import perf_counter as pc`` -> ``pc: time.perf_counter``;
        ``from repro import telemetry`` -> ``telemetry: repro.telemetry``.
        Function-level imports are included -- rules care about what a
        name *can* mean in the file, not about shadowing subtleties.
        """
        table: "dict[str, str]" = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    table[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_import_module(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{base}.{alias.name}"
        return table

    def resolve_import_module(self, node: ast.ImportFrom) -> "str | None":
        """Absolute module an ``ImportFrom`` pulls from (handles relative
        imports against this file's logical module)."""
        if node.level == 0:
            return node.module
        if self.module is None:
            return node.module
        parts = self.module.split(".")
        # level 1 = current package: drop only the module's own name.
        anchor = parts[:-node.level] if node.level <= len(parts) else []
        if node.module:
            anchor.append(node.module)
        return ".".join(anchor) if anchor else node.module

    def qualified_name(self, node: ast.AST) -> "str | None":
        """Fully qualified dotted name for a Name/Attribute chain, with
        the leading segment resolved through the import table.

        ``np.random.rand`` -> ``numpy.random.rand`` under
        ``import numpy as np``; unresolvable roots keep their local
        spelling so rules can still match on conventional names.
        """
        parts: "list[str]" = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- suppression -----------------------------------------------------

    def suppressed(self, rule: str, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", None) or line
        return self.pragmas.allows(rule, line, end)

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 0)
        return Violation(path=self.path, line=line,
                         col=getattr(node, "col_offset", 0) + 1,
                         rule=rule, message=message,
                         end_line=getattr(node, "end_lineno", None) or line)


class Rule:
    """Base class for a registered check.

    Subclasses set ``id``/``title``/``rationale`` and implement
    :meth:`check`, yielding violations (suppression is applied by the
    engine, not the rule).  ``scope`` restricts a rule to logical module
    prefixes; ``exclude_scope`` carves exceptions back out.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    scope: "tuple[str, ...] | None" = None
    exclude_scope: "tuple[str, ...]" = ()

    def applies_to(self, module: "str | None") -> bool:
        if self.scope is None:
            in_scope = True
        elif module is None:
            in_scope = False
        else:
            in_scope = _matches_any(module, self.scope)
        if in_scope and module is not None and self.exclude_scope:
            in_scope = not _matches_any(module, self.exclude_scope)
        return in_scope

    def check(self, src: SourceFile) -> "Iterable[Violation]":
        raise NotImplementedError


class ProjectRule(Rule):
    """Base class for whole-program rules (the pass-2 checks).

    A project rule sees the assembled
    :class:`~repro.checks.callgraph.ProjectGraph` instead of one file at
    a time, so it can reason about cross-file facts: hot status flowing
    through calls, a segment created in one function and unlinked in
    another.  ``scope``/``exclude_scope`` still apply -- the engine
    filters each emitted violation by the logical module of the file it
    points into, and per-file pragmas suppress it the same way they
    suppress per-file rules.
    """

    def check(self, src: SourceFile) -> "Iterable[Violation]":
        return ()

    def check_project(self, graph: "ProjectGraph") -> "Iterable[Violation]":
        raise NotImplementedError


def _matches_any(module: str, prefixes: "tuple[str, ...]") -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


_REGISTRY: "Dict[str, Rule]" = {}


def register(rule_cls: "type[Rule]") -> "type[Rule]":
    """Class decorator adding a rule (by ``id``) to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> "List[Rule]":
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


@dataclass
class CheckReport:
    """Aggregate result of one checker run."""

    violations: "List[Violation]" = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Violations waived by a ``--baseline`` file (see
    #: :mod:`repro.checks.baseline`); 0 when no baseline is applied.
    baselined: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> "Dict[str, int]":
        counts: "Dict[str, int]" = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))


@dataclass
class FileScan:
    """Pass-1 result for one file.  Picklable, so ``--jobs`` workers can
    ship it back to the parent process."""

    path: str
    module: "str | None"
    violations: "List[Violation]" = field(default_factory=list)
    suppressed: int = 0
    pragmas: "FilePragmas | None" = None
    #: Symbol summary for pass 2; None when the file failed to parse.
    summary: "ModuleSummary | None" = None


def scan_source(path: str, source: str,
                rules: "Iterable[Rule] | None" = None,
                module: "str | None" = None) -> FileScan:
    """Pass 1 over one in-memory source: per-file rules + summary."""
    from repro.checks.symbols import summarize
    try:
        src = SourceFile(path, source, module=module)
    except SyntaxError as exc:
        pragmas = parse_pragmas(source)
        return FileScan(
            path=path,
            module=pragmas.module_override or module
            or module_name_for_path(path),
            violations=[Violation(path=path, line=exc.lineno or 0,
                                  col=(exc.offset or 0) or 1,
                                  rule=PARSE_RULE,
                                  message=f"syntax error: {exc.msg}")],
            suppressed=0, pragmas=pragmas, summary=None)
    violations: "List[Violation]" = []
    suppressed = 0
    for rule in (all_rules() if rules is None else rules):
        if isinstance(rule, ProjectRule):
            continue
        if not rule.applies_to(src.module):
            continue
        for violation in rule.check(src):
            if src.pragmas.allows(violation.rule, violation.line,
                                  violation.end_line or violation.line):
                suppressed += 1
            else:
                violations.append(violation)
    violations.sort()
    return FileScan(path=path, module=src.module, violations=violations,
                    suppressed=suppressed, pragmas=src.pragmas,
                    summary=summarize(src))


def scan_file(path: str, rules: "Iterable[Rule] | None" = None) -> FileScan:
    """Pass 1 over one file on disk."""
    with open(path, encoding="utf-8", errors="replace") as handle:
        source = handle.read()
    return scan_source(path, source, rules)


def run_project_rules(scans: "List[FileScan]",
                      rules: "Iterable[Rule] | None" = None
                      ) -> "Tuple[List[Violation], int]":
    """Pass 2: assemble the graph and run every project rule.

    Each violation is scoped and suppressed against the file it points
    into -- a ``# repro: allow(ERT013)`` next to the loop silences the
    project rule exactly like a per-file one.
    """
    from repro.checks.callgraph import build_graph
    rule_list = all_rules() if rules is None else list(rules)
    project_rules = [r for r in rule_list if isinstance(r, ProjectRule)]
    if not project_rules:
        return [], 0
    summaries = [scan.summary for scan in scans if scan.summary is not None]
    graph = build_graph(summaries)
    by_path: "Dict[str, FileScan]" = {scan.path: scan for scan in scans}
    violations: "List[Violation]" = []
    suppressed = 0
    for rule in project_rules:
        for violation in rule.check_project(graph):
            scan = by_path.get(violation.path)
            if scan is None:
                continue
            if not rule.applies_to(scan.module):
                continue
            if scan.pragmas is not None and scan.pragmas.allows(
                    violation.rule, violation.line,
                    violation.end_line or violation.line):
                suppressed += 1
            else:
                violations.append(violation)
    violations.sort()
    return violations, suppressed


def check_source(path: str, source: str,
                 rules: "Iterable[Rule] | None" = None,
                 module: "str | None" = None
                 ) -> "Tuple[List[Violation], int]":
    """Check one in-memory source; returns (violations, suppressed_count).

    Runs both passes over the single file, so project rules whose facts
    are file-local (every fixture pair) work through this entry point.
    """
    rule_list = all_rules() if rules is None else list(rules)
    scan = scan_source(path, source, rule_list, module=module)
    project_violations, project_suppressed = run_project_rules(
        [scan], rule_list)
    violations = sorted(scan.violations + project_violations)
    return violations, scan.suppressed + project_suppressed


def check_file(path: str, rules: "Iterable[Rule] | None" = None
               ) -> "Tuple[List[Violation], int]":
    """Check one file on disk; returns (violations, suppressed_count)."""
    with open(path, encoding="utf-8", errors="replace") as handle:
        source = handle.read()
    return check_source(path, source, rules)


def _scan_file_task(task: "Tuple[str, Optional[Tuple[str, ...]]]") -> FileScan:
    """Pass-1 worker body for ``run_checks(jobs=N)``.

    Rule objects are not pickled -- workers re-select rules by id from
    their own registry (importing :mod:`repro.checks` populates it under
    both fork and spawn start methods).
    """
    path, rule_ids = task
    import repro.checks  # noqa: F401  (registers the rule set)
    rule_list = all_rules()
    if rule_ids is not None:
        wanted = set(rule_ids)
        rule_list = [rule for rule in rule_list if rule.id in wanted]
    return scan_file(path, rule_list)


def iter_python_files(paths: "Iterable[str]",
                      excludes: "tuple[str, ...]" = DEFAULT_EXCLUDES
                      ) -> "Iterator[str]":
    """Yield every ``.py`` file under ``paths`` (files or directories),
    sorted, minus the exclude patterns.  Explicitly named files are
    always yielded -- excludes only prune the directory walks, so
    ``ert-repro check tests/fixtures/checks/ert001_fail.py`` works even
    though a tree-wide run skips the fixture corpus."""
    seen: "set[str]" = set()
    for top in paths:
        if os.path.isfile(top):
            if top not in seen:
                seen.add(top)
                yield top
            continue
        candidates = []
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            candidates.extend(os.path.join(dirpath, name)
                              for name in sorted(filenames)
                              if name.endswith(".py"))
        for candidate in candidates:
            normalized = candidate.replace(os.sep, "/")
            if any(fnmatch.fnmatch(normalized, pattern)
                   or fnmatch.fnmatch("/" + normalized, pattern)
                   for pattern in excludes):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def run_checks(paths: "Iterable[str]",
               rules: "Iterable[Rule] | None" = None,
               excludes: "tuple[str, ...]" = DEFAULT_EXCLUDES,
               jobs: int = 1) -> CheckReport:
    """Run both passes over every Python file under ``paths``.

    ``jobs > 1`` parallelizes pass 1 across processes.  ``pool.map``
    preserves input order and pass 2 runs in the parent over the sorted
    scan list, so the report is byte-identical at any ``jobs`` value.
    """
    rule_list = all_rules() if rules is None else list(rules)
    files = list(iter_python_files(paths, excludes))
    scans: "List[FileScan]"
    if jobs > 1 and len(files) > 1:
        import concurrent.futures
        rule_ids = tuple(rule.id for rule in rule_list)
        tasks = [(path, rule_ids) for path in files]
        # The checker cannot route through repro.parallel's audited pool
        # layer: repro.checks imports nothing else from repro so it can
        # lint a broken tree (see the ERT005 layering table).  Pass 1 is
        # a stateless map() over files, the narrow case a raw pool is
        # safe for.
        with concurrent.futures.ProcessPoolExecutor(  # repro: allow(ERT008)
                max_workers=min(jobs, len(files))) as pool:
            scans = list(pool.map(_scan_file_task, tasks, chunksize=4))
    else:
        scans = [scan_file(path, rule_list) for path in files]
    report = CheckReport(files_checked=len(scans))
    for scan in scans:
        report.violations.extend(scan.violations)
        report.suppressed += scan.suppressed
    project_violations, project_suppressed = run_project_rules(
        scans, rule_list)
    report.violations.extend(project_violations)
    report.suppressed += project_suppressed
    report.violations.sort()
    return report
