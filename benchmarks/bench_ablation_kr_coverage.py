"""§III-C at sequencing depth: k-mer reuse savings grow with coverage.

EXPERIMENTS.md notes that our Fig 14 reductions are smaller than the
paper's 34-67 % because the shared workload sits at ~1.7x coverage while
real runs are 30-50x.  This ablation sweeps coverage on a smaller genome
and shows the reductions growing toward the paper's regime.
"""

import pytest

from repro.analysis import format_table
from repro.core import ErtConfig, ErtSeedingEngine, KmerReuseDriver, build_ert
from repro.memsim import MemoryTracer
from repro.seeding import SeedingParams, seed_read
from repro.sequence import GenomeSimulator, ReadSimulator

from conftest import record_result

PHASES = ("index_lookup", "tree_root", "tree_traversal")


def _requests(index, reads, params, batched):
    tracer = MemoryTracer()
    index.attach_tracer(tracer)
    try:
        if batched:
            KmerReuseDriver(ErtSeedingEngine(index), params).seed_batch(
                list(reads))
        else:
            engine = ErtSeedingEngine(index)
            for read in reads:
                seed_read(engine, read, params)
    finally:
        index.attach_tracer(None)
    return sum(tracer.by_phase[p].requests for p in PHASES)


def test_kr_savings_grow_with_coverage(benchmark):
    def run():
        reference = GenomeSimulator(seed=4001).generate(4000)
        index = build_ert(reference, ErtConfig(k=7, max_seed_len=151,
                                               table_threshold=64,
                                               table_x=3))
        params = SeedingParams(min_seed_len=19, reseed=False,
                               use_last=False, use_pruning=False)
        rows = []
        for coverage in (1, 4, 8):
            sim = ReadSimulator(reference, read_length=101, seed=4002)
            reads = [r.codes for r in sim.simulate_coverage(coverage)]
            per_read = _requests(index, reads, params, batched=False)
            batched = _requests(index, reads, params, batched=True)
            saving = 100.0 * (1 - batched / per_read)
            rows.append([f"{coverage}x", len(reads), per_read / len(reads),
                         batched / len(reads), saving])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["coverage", "reads", "index+root+traversal req/read (per-read)",
         "same (KR batched)", "KR saving %"],
        rows,
        title="SIII-C -- k-mer reuse savings vs sequencing coverage "
              "(paper: 34-67% page-open reductions at 30-50x coverage; "
              "both runs unpruned so only reuse differs)")
    record_result("ablation_kr_coverage", table)

    savings = [row[4] for row in rows]
    assert savings[-1] > savings[0]
    assert savings[-1] > 15.0