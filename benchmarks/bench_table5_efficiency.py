"""Table V: seeding area and energy efficiency.

Paper rows (KReads/s/mm^2, Reads/mJ): BWA-MEM 0.38/2.89, BWA-MEM2
1.13/8.59, CPU-ERT 2.32/17.56, ASIC-GenAx 24.23/379.16 (literature),
ASIC-ERT 276.36/347.51.  Reproduced with modelled CPU throughputs,
simulated ASIC throughput, and the Table III / Table I area-power
constants; GenAx is carried as its published row.
"""

import pytest

from repro.accel import (
    AcceleratorSim,
    GENAX_ROW,
    capture_reuse_jobs,
    efficiency_row,
)
from repro.analysis import cpu_throughput, format_table, measure_traffic
from repro.core import ErtSeedingEngine
from repro.fmindex import FmdSeedingEngine

from conftest import record_result


def _cpu_bar(engine, reads, params):
    profile = measure_traffic(engine, reads, params)
    per_read = {phase: reqs / profile.reads
                for phase, (reqs, _b) in profile.by_phase.items()}
    return cpu_throughput(profile.bytes_per_read, per_read)["throughput"]


def _rows(fmd_mem_index, fmd_mem2_index, ert_pm_index, reads, params, asic):
    rows = [
        efficiency_row("BWA-MEM (CPU)",
                       _cpu_bar(FmdSeedingEngine(fmd_mem_index), reads,
                                params), "cpu"),
        efficiency_row("BWA-MEM2 (CPU)",
                       _cpu_bar(FmdSeedingEngine(fmd_mem2_index), reads,
                                params), "cpu"),
        efficiency_row("CPU-ERT (best)",
                       _cpu_bar(ErtSeedingEngine(ert_pm_index), reads,
                                params), "cpu"),
    ]
    jobs, _stats = capture_reuse_jobs(ert_pm_index, reads, params,
                                      asic.decode_cycles)
    asic_tput = AcceleratorSim(asic).run(
        jobs, n_reads=len(reads)).reads_per_second
    rows.append(efficiency_row("ASIC-ERT (best)", asic_tput, "asic"))
    return rows


def test_table5_seeding_efficiency(benchmark, fmd_mem_index, fmd_mem2_index,
                                   ert_pm_index, reads, params, asic):
    rows = benchmark.pedantic(
        _rows, args=(fmd_mem_index, fmd_mem2_index, ert_pm_index, reads,
                     params, asic),
        rounds=1, iterations=1)

    printable = [[r.system, r.kreads_per_s_per_mm2, r.reads_per_mj]
                 for r in rows]
    printable.insert(3, [GENAX_ROW["system"] + " (published)",
                         GENAX_ROW["kreads_per_s_per_mm2"],
                         GENAX_ROW["reads_per_mj"]])
    table = format_table(
        ["system", "KReads/s/mm^2", "Reads/mJ"],
        printable,
        title="Table V -- seeding efficiency (paper: ASIC-ERT 11.4x the "
              "iso-area throughput of ASIC-GenAx and ~40x the energy "
              "efficiency of BWA-MEM2 on CPU)")
    record_result("table5_efficiency", table)

    by_name = {r.system: r for r in rows}
    assert by_name["BWA-MEM (CPU)"].kreads_per_s_per_mm2 < \
        by_name["BWA-MEM2 (CPU)"].kreads_per_s_per_mm2 < \
        by_name["CPU-ERT (best)"].kreads_per_s_per_mm2 < \
        by_name["ASIC-ERT (best)"].kreads_per_s_per_mm2
    assert by_name["ASIC-ERT (best)"].reads_per_mj > \
        by_name["CPU-ERT (best)"].reads_per_mj
