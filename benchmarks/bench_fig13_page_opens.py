"""Figs 13 and 14: DRAM page opens by seeding phase.

Fig 13 (paper): in ERT-KR, random index-table and tree-root lookups
dominate page opens (71 % combined in baseline ERT); tree traversal and
leaf gathering stay small (15 % / 5 %) thanks to the tiled layout, and
reference fetches cost ~9 %.

Fig 14 (paper): prefix merging cuts index lookups 24.4 %, root fetches
25.5 % and traversal 30.4 %; k-mer reuse cuts them 37.9 % / 34.3 % /
66.7 % vs baseline ERT while *increasing* leaf gathering slightly
(pruning no longer applies).
"""

import pytest

from repro.analysis import format_table
from repro.core import ErtSeedingEngine, KmerReuseDriver
from repro.memsim import DramConfig, DramModel, MemoryTracer
from repro.seeding import seed_read

from conftest import record_result

PHASES = ("index_lookup", "table_lookup", "tree_root", "tree_traversal",
          "leaf_gather", "ref_fetch", "prefix_count")


def _page_opens(index, reads, params, use_driver, use_pruning=True):
    tracer = MemoryTracer()
    dram = DramModel(DramConfig(channels=8))
    tracer.sinks.append(dram)
    index.attach_tracer(tracer)
    try:
        if use_driver:
            driver = KmerReuseDriver(ErtSeedingEngine(index), params)
            driver.seed_batch(list(reads))
        else:
            from repro.seeding import SeedingParams
            engine = ErtSeedingEngine(index)
            run_params = SeedingParams(
                min_seed_len=params.min_seed_len, use_pruning=use_pruning)
            for read in reads:
                seed_read(engine, read, run_params)
    finally:
        index.attach_tracer(None)
    return {phase: dram.by_phase[phase].page_opens
            for phase in PHASES if phase in dram.by_phase}


def _collect(ert_index, ert_pm_index, reads, params):
    return {
        "ERT": _page_opens(ert_index, reads, params, use_driver=False),
        "ERT (no pruning)": _page_opens(ert_pm_index, reads, params,
                                        use_driver=False,
                                        use_pruning=False),
        "ERT-PM": _page_opens(ert_pm_index, reads, params, use_driver=False),
        "ERT-KR": _page_opens(ert_pm_index, reads, params, use_driver=True),
    }


def test_fig13_fig14_page_opens(benchmark, ert_index, ert_pm_index, reads,
                                params):
    opens = benchmark.pedantic(_collect,
                               args=(ert_index, ert_pm_index, reads, params),
                               rounds=1, iterations=1)

    # Fig 13: ERT-KR breakdown in percent.
    kr = opens["ERT-KR"]
    total = sum(kr.values())
    rows = [[phase, count, 100.0 * count / total]
            for phase, count in kr.items()]
    table13 = format_table(
        ["phase", "page opens", "%"],
        rows,
        title="Fig 13 -- DRAM page-open breakdown for ERT-KR "
              "(paper: index+root lookups dominate; traversal 15%, "
              "leaf gathering 5%, reference fetch 9%)")
    record_result("fig13_page_open_breakdown", table13)

    # Fig 14: per-read page opens by phase across the three configs.
    n = len(reads)
    rows14 = []
    for config, phases in opens.items():
        for phase, count in phases.items():
            rows14.append([config, phase, count / n])
    table14 = format_table(
        ["config", "phase", "page opens/read"],
        rows14,
        title="Fig 14 -- DRAM page opens per read across optimizations "
              "(paper: PM cuts index/root/traversal 24-30%; KR cuts them "
              "34-67% but leaf gathering rises slightly)")
    record_result("fig14_page_opens_per_read", table14)

    ert, pm, kr = opens["ERT"], opens["ERT-PM"], opens["ERT-KR"]
    unpruned = opens["ERT (no pruning)"]
    # Random index lookups dominate tree traversal (Fig 13's shape).
    assert kr["index_lookup"] > kr["tree_traversal"]
    # PM reduces the phases it targets.
    for phase in ("index_lookup", "tree_root"):
        assert pm[phase] < ert[phase], phase
    # KR cannot prune (§III-C), so the apples-to-apples baseline for its
    # reuse savings is the unpruned run; at sequencing coverage the paper
    # also beats the *pruned* baseline, which our 1.7x coverage cannot.
    for phase in ("index_lookup", "tree_root", "tree_traversal"):
        assert kr[phase] < unpruned[phase], phase
    assert kr["index_lookup"] < ert["index_lookup"]
