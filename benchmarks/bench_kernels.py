"""Scalar-vs-vector kernel benchmark and the run-ledger gate.

Times the batch engine's two kernel backends (``--kernels scalar`` --
the per-read oracle -- and ``--kernels vector`` -- the gather-based
batched ERT walk plus the wavefront Smith-Waterman) on the standard
30 kbp / 500-read workload, asserts byte-identical output, and emits
``BENCH_kernels.json`` at the repository root.

Unlike the other benchmarks this one also *records itself* into the
run ledger (``benchmarks/ledger.jsonl``): one manifest for the scalar
oracle, then one for the vector kernels, under the single benchmark
name ``kernels_throughput``.  ``ert-repro ledger diff`` compares the
last two runs of a benchmark, so after this benchmark runs the diff
reads "scalar -> vector" -- with ``--threshold 0.0`` the CI gate fails
whenever the vector kernels are not strictly faster than the oracle
they replace.

Seeding is timed at two batch sizes because the vector walk amortizes
per-batch setup (code packing, flat-tree gather tables) that the
scalar loop does not have; the headline speedup compares each
backend's best configuration.  The alignment leg runs on a read
subset, asserts byte-identical SAM, and -- now that the vector path
routes the per-chain CIGAR production through the batched wavefront
traceback (``batched_sw_traceback``) -- its ``align.reads_per_sec``
is a gated ledger metric alongside seeding: the ``--threshold 0.0``
diff fails whenever vector ``align`` is not strictly faster than
scalar on this workload.
"""

import json
import time
from pathlib import Path

from repro.ledger import append_record, build_record, env_fingerprint
from repro.parallel import ParallelConfig, align_reads, seed_reads

from conftest import record_result

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_kernels.json"
LEDGER_PATH = REPO_ROOT / "benchmarks" / "ledger.jsonl"

BENCHMARK = "kernels_throughput"
BATCH_SIZES = (64, 256)
ROUNDS = 3
N_ALIGN = 120
#: Acceptance floor: vector seeding throughput vs the scalar oracle,
#: best batch size each (ISSUE 8 requires >= 3x on this workload).
MIN_SEED_SPEEDUP = 3.0
#: Acceptance floor for the SAM path: the batched wavefront traceback
#: plus batched seeding must beat the scalar aligner end to end
#: (ISSUE 9); the ledger gate additionally requires strictly > 1.0.
MIN_ALIGN_SPEEDUP = 1.1


def _time_best(fn, rounds=ROUNDS):
    """Best-of-N wall time and the last result (min filters scheduler
    noise, which dwarfs variance on a loaded CI box)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_kernel_throughput_ledger_gate(ert_index, reads, params):
    n_reads = len(reads)

    def seed(kernels, batch_size):
        config = ParallelConfig(workers=1, batch_size=batch_size,
                                kernels=kernels)
        lines, _stats = seed_reads(ert_index, reads, params, config)
        return lines

    def align(kernels):
        config = ParallelConfig(workers=1, batch_size=64, kernels=kernels)
        records, _stats = align_reads(ert_index, reads[:N_ALIGN], params,
                                      config)
        return [rec.to_line() for rec in records]

    seed_rps = {}          # kernels -> {batch_size: reads/sec}
    oracle_lines = None
    for kernels in ("scalar", "vector"):
        seed_rps[kernels] = {}
        for batch_size in BATCH_SIZES:
            elapsed, lines = _time_best(
                lambda k=kernels, b=batch_size: seed(k, b))
            if oracle_lines is None:
                oracle_lines = lines
            assert lines == oracle_lines, \
                f"kernels={kernels} batch_size={batch_size} changed " \
                f"the seeding output"
            seed_rps[kernels][batch_size] = n_reads / elapsed

    align_rps = {}
    sam_oracle = None
    for kernels in ("scalar", "vector"):
        elapsed, sam = _time_best(lambda k=kernels: align(k), rounds=2)
        if sam_oracle is None:
            sam_oracle = sam
        assert sam == sam_oracle, \
            f"kernels={kernels} changed the SAM output"
        align_rps[kernels] = N_ALIGN / elapsed

    best_seed = {k: max(rps.values()) for k, rps in seed_rps.items()}
    seed_speedup = best_seed["vector"] / best_seed["scalar"]
    align_speedup = align_rps["vector"] / align_rps["scalar"]

    payload = {
        "benchmark": BENCHMARK,
        "workload": {
            "reads": n_reads,
            "read_length": int(reads[0].size),
            "genome_length": len(ert_index.reference),
            "k": ert_index.config.k,
            "align_reads": N_ALIGN,
        },
        "env": env_fingerprint(),
        "seeding": {
            kernels: {str(b): {"reads_per_sec": rps}
                      for b, rps in by_batch.items()}
            for kernels, by_batch in seed_rps.items()},
        "align": {kernels: {"reads_per_sec": rps}
                  for kernels, rps in align_rps.items()},
        "seed_speedup_vector_vs_scalar": seed_speedup,
        "align_speedup_vector_vs_scalar": align_speedup,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")

    # Two ledger manifests -- scalar first, vector second -- so the
    # benchmark's "last two runs" always read previous=scalar,
    # current=vector and `ert-repro ledger diff` gates on the vector
    # kernels beating the oracle.
    workload = payload["workload"]
    for kernels in ("scalar", "vector"):
        metrics = {"seeding.reads_per_sec": best_seed[kernels],
                   "align.reads_per_sec": align_rps[kernels]}
        if kernels == "vector":
            metrics["seed_speedup_vs_scalar"] = seed_speedup
            metrics["align_speedup_vs_scalar"] = align_speedup
        append_record(str(LEDGER_PATH), build_record(
            BENCHMARK, metrics, label=f"kernels-{kernels}",
            workload=workload,
            config={"kernels": kernels, "workers": 1,
                    "batch_sizes": list(BATCH_SIZES)}))

    rows = [f"{'config':<28}{'reads/sec':>12}{'vs scalar':>12}"]
    for kernels in ("scalar", "vector"):
        for batch_size in BATCH_SIZES:
            rps = seed_rps[kernels][batch_size]
            rows.append(f"{f'seed {kernels} batch={batch_size}':<28}"
                        f"{rps:>12.1f}"
                        f"{rps / best_seed['scalar']:>12.2f}")
    for kernels in ("scalar", "vector"):
        rps = align_rps[kernels]
        rows.append(f"{f'align {kernels}':<28}{rps:>12.1f}"
                    f"{rps / align_rps['scalar']:>12.2f}")
    record_result(
        "kernels_throughput",
        "scalar vs vector kernels (identical output asserted)\n"
        + "\n".join(rows)
        + f"\nseed speedup {seed_speedup:.2f}x"
        f"  align speedup {align_speedup:.2f}x")

    # What must hold on any machine: identical output (asserted above)
    # and the acceptance speedups on seeding *and* the SAM path (the
    # ledger diff re-checks both from the recorded manifests).
    assert seed_speedup >= MIN_SEED_SPEEDUP, \
        f"vector seeding speedup {seed_speedup:.2f}x below the " \
        f"{MIN_SEED_SPEEDUP:.1f}x acceptance floor"
    assert align_speedup >= MIN_ALIGN_SPEEDUP, \
        f"vector align speedup {align_speedup:.2f}x below the " \
        f"{MIN_ALIGN_SPEEDUP:.1f}x acceptance floor"
