"""§VII quantified: hash-table seeding vs SMEM seeding.

The paper's related-work argument: hash-based seeding (mrsFAST, Hobbes)
needs heavy filtration because it floods seed-extension, whereas
FMD/ERT mappers "already produce fewer seeds prior to seed-extension".
This bench measures both sides on the shared workload.
"""

import pytest

from repro.analysis import format_table, measure_traffic
from repro.baselines import HashSeedIndex, HashSeeder
from repro.baselines.hashseed import HashSeedConfig
from repro.core import ErtSeedingEngine
from repro.memsim import MemoryTracer
from repro.seeding import seed_read

from conftest import record_result


def test_hash_vs_smem_seeding(benchmark, reference, ert_index, reads,
                              params):
    def run():
        hash_index = HashSeedIndex(reference, HashSeedConfig(k=12))
        seeder = HashSeeder(hash_index)
        tracer = MemoryTracer()
        hash_index.attach_tracer(tracer)
        hash_seeds = hash_hits = 0
        try:
            for read in reads:
                result = seeder.seed_read(read)
                hash_seeds += len(result.smems)
                hash_hits += sum(s.hit_count for s in result.smems)
        finally:
            hash_index.attach_tracer(None)
        hash_bytes = tracer.total_bytes / len(reads)

        ert = ErtSeedingEngine(ert_index)
        profile = measure_traffic(ert, reads, params)
        smem_seeds = smem_hits = 0
        for read in reads:
            result = seed_read(ert, read, params)
            smem_seeds += len(result.all_seeds)
            smem_hits += sum(s.hit_count for s in result.all_seeds)
        return (hash_seeds, hash_hits, hash_bytes,
                smem_seeds, smem_hits, profile.bytes_per_read,
                hash_index.index_bytes()["total"],
                ert_index.index_bytes()["total"])

    (hash_seeds, hash_hits, hash_bytes, smem_seeds, smem_hits,
     smem_bytes, hash_size, ert_size) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    n = 500
    table = format_table(
        ["seeder", "seeds/read", "candidate hits/read", "KB fetched/read",
         "index KiB"],
        [["hash (k=12, every window)", hash_seeds / n, hash_hits / n,
          hash_bytes / 1024, hash_size / 1024],
         ["ERT (SMEM, 3 rounds)", smem_seeds / n, smem_hits / n,
          smem_bytes / 1024, ert_size / 1024]],
        title="SVII -- hash-table seeding floods extension; SMEM seeding "
              "(paper: FMD mappers 'already produce fewer seeds prior to "
              "seed-extension')")
    record_result("hash_baseline", table)

    assert hash_seeds > 3 * smem_seeds
    assert hash_hits > smem_hits