"""Accelerator design-point ablations the paper discusses in §IV and §VI.

* **Context count** -- the ASIC "utilizes 256 contexts to saturate memory
  bandwidth"; throughput should climb with contexts and flatten.
* **MicroBlaze softcore** -- the rejected design point (§IV-A): node
  decode 10-16x slower, giving 7.3-16.6x worse SMEM latency than the
  custom units.
* **Host runtime / double buffering** -- §IV-E overlaps PCIe DMA with
  computation; the ablation shows what turning that off costs.
"""

import pytest

from repro.accel import (
    AcceleratorSim,
    HostConfig,
    HostModel,
    asic_config,
    capture_ert_jobs,
    fpga_config,
    result_record_bytes,
)
from repro.accel.config import microblaze_config
from repro.accel.ops import Op
from repro.analysis import format_table
from repro.core import ErtSeedingEngine
from repro.seeding import seed_read

from conftest import record_result


def test_ablation_contexts_and_microblaze(benchmark, ert_index, reads,
                                          params, asic, fpga):
    def run():
        jobs = capture_ert_jobs(ert_index, reads, params,
                                asic.decode_cycles)
        context_rows = []
        for contexts in (1, 2, 4, 8, 16, 32):
            cfg = asic.scaled(contexts_per_machine=contexts)
            result = AcceleratorSim(cfg).run(jobs)
            context_rows.append([contexts * cfg.n_machines,
                                 result.mreads_per_second])
        fpga_jobs = capture_ert_jobs(ert_index, reads, params,
                                     fpga.decode_cycles)
        mb_cfg = microblaze_config()
        mb_jobs = [[Op(op.cycles * 12, op.addr, op.phase) for op in job]
                   for job in fpga_jobs]
        # Throughput at full multiplexing (context switching hides most of
        # the slow decode) and latency with one context per machine (the
        # regime the paper's 7.3-16.6x algorithm-latency number lives in).
        custom_tput = AcceleratorSim(fpga).run(fpga_jobs)
        mb_tput = AcceleratorSim(mb_cfg).run(mb_jobs)
        one_ctx = fpga.scaled(contexts_per_machine=1)
        custom_lat = AcceleratorSim(one_ctx).run(fpga_jobs)
        mb_lat = AcceleratorSim(
            mb_cfg.scaled(contexts_per_machine=1)).run(mb_jobs)
        return context_rows, custom_tput, mb_tput, custom_lat, mb_lat

    (context_rows, custom_tput, mb_tput,
     custom_lat, mb_lat) = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["total contexts", "Mreads/s"], context_rows,
        title="SIV-A ablation -- context count (paper: 256 contexts "
              "saturate memory bandwidth)")
    decode_ratio = (microblaze_config().decode_cycles["tree_traversal"]
                    / fpga_config().decode_cycles["tree_traversal"])
    tput_slowdown = custom_tput.reads_per_second / mb_tput.reads_per_second
    lat_slowdown = mb_lat.cycles / custom_lat.cycles
    table += "\n\n" + format_table(
        ["metric", "custom decoder", "MicroBlaze", "slowdown"],
        [["node decode cycles", fpga_config().decode_cycles["tree_traversal"],
          microblaze_config().decode_cycles["tree_traversal"],
          f"{decode_ratio:.0f}x (paper: 10-16x)"],
         ["single-context cycles", custom_lat.cycles, mb_lat.cycles,
          f"{lat_slowdown:.1f}x"],
         ["saturated Mreads/s", custom_tput.mreads_per_second,
          mb_tput.mreads_per_second,
          f"{tput_slowdown:.2f}x (multiplexing hides decode)"]],
        title="SIV-A ablation -- softcore vs custom decode")
    record_result("ablation_accelerator_design", table)

    tputs = [row[1] for row in context_rows]
    assert tputs == sorted(tputs) or all(
        b >= a * 0.98 for a, b in zip(tputs, tputs[1:]))
    assert tputs[-1] > 1.5 * tputs[0]
    assert 10.0 <= decode_ratio <= 16.0
    assert lat_slowdown > tput_slowdown > 1.0


def test_ablation_host_runtime(benchmark, ert_index, reads, params):
    def run():
        engine = ErtSeedingEngine(ert_index)
        sizes = [result_record_bytes(seed_read(engine, read, params))
                 for read in reads[:100]]
        accel_rate = 3.6e6  # the paper's FPGA seeding rate
        overlapped = HostModel(HostConfig(double_buffered=True)).estimate(
            10_000_000, accel_rate, sizes)
        serial = HostModel(HostConfig(double_buffered=False)).estimate(
            10_000_000, accel_rate, sizes)
        return overlapped, serial

    overlapped, serial = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["runtime", "Mreads/s", "overlap efficiency"],
        [["double buffered (SIV-E)", overlapped.reads_per_second / 1e6,
          overlapped.overlap_efficiency],
         ["serial transfers", serial.reads_per_second / 1e6,
          serial.overlap_efficiency]],
        title="SIV-E ablation -- PCIe double buffering at the paper's "
              "3.6 Mreads/s FPGA seeding rate")
    record_result("ablation_host_runtime", table)

    assert overlapped.reads_per_second > serial.reads_per_second
    assert overlapped.reads_per_second <= 3.6e6 * 1.01
