"""Fig 11: seeding throughput across all seven configurations.

Paper bars (Mreads/s, 787 M reads, GRCh38): CPU-BWA-MEM < CPU-BWA-MEM2
(~1.1) < CPU-ERT (2.1x over BWA-MEM2) < FPGA-ERT (3.6, i.e. 3.3x) <
ASIC-ERT variants (baseline 2.05x over CPU-ERT, +1.23x from PM, +1.56x
from KR; 8.1x over BWA-MEM2 overall).

Reproduction: CPU bars from the roofline model over measured traffic and
op mixes; ASIC/FPGA bars from the event-driven simulator replaying
functional traces (the paper's own §V methodology).  Absolute Mreads/s
differ at simulator scale; the ordering and the direction of every
optimization must hold.
"""

import pytest

from repro.accel import AcceleratorSim, capture_ert_jobs, capture_reuse_jobs
from repro.analysis import cpu_throughput, format_table, measure_traffic
from repro.core import ErtSeedingEngine
from repro.fmindex import FmdSeedingEngine

from conftest import record_result


def _cpu_bar(engine, reads, params):
    profile = measure_traffic(engine, reads, params)
    per_read = {phase: reqs / profile.reads
                for phase, (reqs, _b) in profile.by_phase.items()}
    return cpu_throughput(profile.bytes_per_read, per_read)["throughput"]


def _all_bars(fmd_mem_index, fmd_mem2_index, ert_index, ert_pm_index,
              reads, params, asic, fpga):
    bars = {}
    bars["CPU-BWA-MEM"] = _cpu_bar(FmdSeedingEngine(fmd_mem_index), reads,
                                   params)
    bars["CPU-BWA-MEM2"] = _cpu_bar(FmdSeedingEngine(fmd_mem2_index), reads,
                                    params)
    bars["CPU-ERT"] = _cpu_bar(ErtSeedingEngine(ert_pm_index), reads, params)

    jobs = capture_ert_jobs(ert_index, reads, params, asic.decode_cycles)
    bars["ASIC-ERT"] = AcceleratorSim(asic).run(jobs).reads_per_second
    jobs_pm = capture_ert_jobs(ert_pm_index, reads, params,
                               asic.decode_cycles)
    bars["ASIC-ERT-PM"] = AcceleratorSim(asic).run(jobs_pm).reads_per_second
    jobs_kr, _stats = capture_reuse_jobs(ert_pm_index, reads, params,
                                         asic.decode_cycles)
    bars["ASIC-ERT-KR"] = AcceleratorSim(asic).run(
        jobs_kr, n_reads=len(reads)).reads_per_second
    fpga_jobs, _ = capture_reuse_jobs(ert_pm_index, reads, params,
                                      fpga.decode_cycles)
    one_fpga = AcceleratorSim(fpga).run(
        fpga_jobs, n_reads=len(reads)).reads_per_second
    bars["FPGA-ERT (2 FPGAs)"] = 2 * one_fpga
    return bars


def test_fig11_seeding_throughput(benchmark, fmd_mem_index, fmd_mem2_index,
                                  ert_index, ert_pm_index, reads, params,
                                  asic, fpga):
    bars = benchmark.pedantic(
        _all_bars, args=(fmd_mem_index, fmd_mem2_index, ert_index,
                         ert_pm_index, reads, params, asic, fpga),
        rounds=1, iterations=1)

    base = bars["CPU-BWA-MEM2"]
    rows = [[name, tput / 1e6, tput / base] for name, tput in bars.items()]
    table = format_table(
        ["config", "Mreads/s", "vs CPU-BWA-MEM2"],
        rows,
        title="Fig 11 -- seeding throughput "
              "(paper: CPU-ERT 2.1x, FPGA-ERT 3.3x, ASIC-ERT up to 8.1x "
              "over CPU-BWA-MEM2)")
    record_result("fig11_seeding_throughput", table)

    # Orderings the paper reports.
    assert bars["CPU-BWA-MEM"] < bars["CPU-BWA-MEM2"] < bars["CPU-ERT"]
    assert bars["CPU-ERT"] > 1.5 * bars["CPU-BWA-MEM2"]
    assert bars["ASIC-ERT"] < bars["ASIC-ERT-PM"] <= bars["ASIC-ERT-KR"]
    assert bars["FPGA-ERT (2 FPGAs)"] < bars["ASIC-ERT-KR"]
    assert bars["ASIC-ERT-KR"] > bars["CPU-BWA-MEM2"]
