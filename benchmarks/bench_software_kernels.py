"""Wall-clock microbenchmarks of the functional kernels.

Unlike the figure/table benches (which model hardware), these time the
pure-Python prototype itself with pytest-benchmark's statistics: index
construction, per-read seeding on each engine, tree walks, banded
Smith-Waterman cell rate.  They exist to track regressions in the
library and to document the prototype's own speed (the repro band notes
it is a functional prototype, not a performance rival of bwa-mem2).
"""

import numpy as np
import pytest

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.extend import banded_smith_waterman
from repro.fmindex import FmdIndex, suffix_array
from repro.fmindex.engine import FmdSeedingEngine
from repro.seeding import seed_read
from repro.sequence import GenomeSimulator, ReadSimulator

GENOME = 8_000


@pytest.fixture(scope="module")
def small_reference():
    return GenomeSimulator(seed=3001).generate(GENOME)


@pytest.fixture(scope="module")
def small_reads(small_reference):
    return [r.codes for r in ReadSimulator(small_reference, read_length=101,
                                           seed=3002).simulate(20)]


def test_kernel_suffix_array_doubling(benchmark, small_reference):
    text = small_reference.both_strands
    sa = benchmark(suffix_array, text)
    assert sa.size == text.size


def test_kernel_suffix_array_sais(benchmark, small_reference):
    text = small_reference.both_strands[:4000]
    sa = benchmark(suffix_array, text, "sais")
    assert sa.size == text.size


def test_kernel_ert_build(benchmark, small_reference):
    config = ErtConfig(k=7, max_seed_len=151)
    index = benchmark.pedantic(build_ert, args=(small_reference, config),
                               rounds=3, iterations=1)
    assert index.roots


def test_kernel_fmd_seeding(benchmark, small_reference, small_reads, params):
    engine = FmdSeedingEngine(FmdIndex(small_reference))

    def run():
        for read in small_reads:
            seed_read(engine, read, params)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_ert_seeding(benchmark, small_reference, small_reads, params):
    engine = ErtSeedingEngine(build_ert(small_reference,
                                        ErtConfig(k=8, max_seed_len=151)))

    def run():
        for read in small_reads:
            seed_read(engine, read, params)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_banded_sw(benchmark):
    rng = np.random.default_rng(3003)
    query = rng.integers(0, 4, size=101, dtype=np.uint8)
    target = query.copy()
    target[::17] = (target[::17] + 1) % 4
    result = benchmark(banded_smith_waterman, query, target)
    assert result.is_aligned
