"""The §I guarantee at benchmark scale: "100% identical output".

Runs the full bit-equivalence verification (oracle == FMD == ERT ==
ERT-PM == batched ERT-KR) over the benchmark workload and reports the
verified seed volume -- the reproduction of the paper's "ERT-based
seeding is bit equivalent and fully verified" statement.
"""

import pytest

from repro.analysis import format_table
from repro.core import ErtSeedingEngine, KmerReuseDriver
from repro.fmindex import FmdSeedingEngine
from repro.seeding import compare_engines, seed_read

from conftest import record_result


def test_bit_equivalence_at_scale(benchmark, fmd_mem2_index, ert_index,
                                  ert_pm_index, reads, params):
    def run():
        fmd = FmdSeedingEngine(fmd_mem2_index)
        ert = ErtSeedingEngine(ert_index)
        ert_pm = ErtSeedingEngine(ert_pm_index)
        sample = reads[:150]
        reports = {
            "FMD vs ERT": compare_engines(fmd, ert, sample, params),
            "ERT vs ERT-PM": compare_engines(ert, ert_pm, sample, params),
        }
        # Batched k-mer reuse vs per-read, on the same engine family.
        driver = KmerReuseDriver(ErtSeedingEngine(ert_pm_index), params)
        batch = driver.seed_batch(sample)
        mismatches = sum(
            1 for read, result in zip(sample, batch)
            if result.key() != seed_read(ert_pm, read, params).key())
        return reports, mismatches, len(sample)

    reports, kr_mismatches, n = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    rows = [[name, report.reads, report.seeds, len(report.mismatches)]
            for name, report in reports.items()]
    rows.append(["ERT-PM vs ERT-KR (batched)", n, "--", kr_mismatches])
    table = format_table(
        ["comparison", "reads", "seeds compared", "mismatches"],
        rows,
        title="SI -- bit-equivalence verification (paper: output "
              "identical to BWA-MEM2 over the full 787M-read dataset)")
    record_result("verification_bit_equivalence", table)

    for name, report in reports.items():
        assert report.equivalent, name
    assert kr_mismatches == 0
