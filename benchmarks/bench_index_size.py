"""§III-A3 index-size claims: ~20 bytes per reference bp, ~2x savings
from early path compression, and the EMPTY-entry fraction."""

import pytest

from repro.analysis import format_table
from repro.core import ErtConfig, build_ert, index_census
from repro.sequence import GenomeSimulator

from conftest import record_result


def _scaling_rows():
    rows = []
    for length in (5_000, 10_000, 20_000, 40_000):
        ref = GenomeSimulator(seed=length).generate(length)
        index = build_ert(ref, ErtConfig(k=8, max_seed_len=151,
                                         table_threshold=64, table_x=4))
        census = index_census(index)
        sizes = census.index_bytes
        rows.append([length, sizes["index_table"] / 1024,
                     sizes["trees"] / 1024, sizes["total"] / 1024,
                     sizes["total"] / length,
                     100.0 * census.empty_fraction])
    return rows


def test_index_size_scaling(benchmark):
    rows = benchmark.pedantic(_scaling_rows, rounds=1, iterations=1)
    table = format_table(
        ["genome bp", "table KiB", "trees KiB", "total KiB",
         "bytes/bp", "EMPTY %"],
        rows,
        title="SIII-A3 -- ERT index size scaling (paper: ~20 N bytes, "
              "62.1 GB at 3 Gbp = table 8 GB + trees 54.1 GB; 38.8% of "
              "entries EMPTY at k=15)")
    # Project the measured marginal cost (trees scale with the genome;
    # the enumerated table is fixed per k) to the paper's genome sizes.
    trees_bytes_per_bp = (rows[-1][2] - rows[-2][2]) * 1024 / (
        rows[-1][0] - rows[-2][0])
    projections = [[name, bp / 1e9, trees_bytes_per_bp,
                    trees_bytes_per_bp * bp / 1e9]
                   for name, bp in (("human (paper: 62.1 GB)", 3.0e9),
                                    ("wheat (paper: 320 GB)", 17.0e9))]
    table += "\n\n" + format_table(
        ["genome", "Gbp", "marginal bytes/bp", "projected tree GB"],
        projections,
        title="Projection of the measured ~O(N) tree growth to the "
              "paper's genome sizes (its rule of thumb: ~20 N bytes)")
    record_result("index_size_scaling", table)

    # Trees dominate the fixed-size table once the genome outgrows 4^k,
    # and the per-bp cost stabilizes (the paper's ~20 N law).
    assert rows[-1][2] > rows[-1][1]
    per_bp = [row[4] for row in rows]
    # Marginal growth: the per-bp cost changes slowly at the large end
    # (the fixed 4^k table amortizes away).
    assert per_bp[-1] < per_bp[0] * 2
    # EMPTY fraction falls as the genome covers more of the k-mer space.
    empty = [row[5] for row in rows]
    assert empty[-1] < empty[0]
