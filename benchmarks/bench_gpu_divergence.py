"""§VII claim: ERT traversal diverges badly on SIMT hardware.

The paper: "ERT traversal is inherently not data-parallel and causes
significant memory divergence in GPU's SIMD units", which is why the
custom MIMD accelerator (independent contexts) wins.  Reproduced by
running warps of tree walks in lockstep and counting memory transactions
per step.
"""

import pytest

from repro.analysis import format_table
from repro.analysis.divergence import measure_divergence

from conftest import record_result


def test_gpu_divergence(benchmark, ert_index, reads):
    def run():
        rows = []
        for warp_size in (4, 8, 16, 32):
            report = measure_divergence(ert_index, reads,
                                        warp_size=warp_size)
            rows.append([warp_size, report.control_coherence * 100,
                         report.transactions_per_step,
                         report.transactions_per_step / warp_size * 100])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["warp size", "control coherence %", "mem transactions/step",
         "% of worst case"],
        rows,
        title="SVII -- SIMT divergence of ERT traversal (a coalesced "
              "kernel would need ~1 transaction/step; ERT warps approach "
              "one transaction per lane)")
    record_result("gpu_divergence", table)

    # Transactions grow nearly linearly with warp size (no coalescing).
    per_step = {row[0]: row[2] for row in rows}
    assert per_step[32] > 3 * per_step[4] * 0.8
    assert per_step[32] > 0.5 * 32  # at least half the worst case
