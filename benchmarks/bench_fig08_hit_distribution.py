"""Fig 8: the skewed k-mer hit distribution.

Paper: very few k-mers (~0.01 %) have more than 1000 hits, yet those few
carry dense radix trees -- the motivation for the two-level index table
(§III-E).  Reproduced: the "k-mers with hits > X" curve on the synthetic
genome, which must fall off sharply.
"""

from repro.analysis import format_table
from repro.core import hit_distribution

from conftest import record_result


def test_fig08_hit_distribution(benchmark, ert_index):
    thresholds = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)
    dist = benchmark.pedantic(hit_distribution, args=(ert_index, thresholds),
                              rounds=1, iterations=1)
    n_entries = 4 ** ert_index.config.k
    rows = [[f">{x}", count, 100.0 * count / n_entries]
            for x, count in dist]
    table = format_table(
        ["hits", "k-mers", "% of index"],
        rows,
        title="Fig 8 -- k-mers with more than X hits "
              "(paper: ~0.01% of k-mers exceed 1000 hits at human scale)")
    record_result("fig08_hit_distribution", table)

    counts = dict(dist)
    assert counts[1] > 0
    # Heavy skew: an order-of-magnitude drop across the thresholds.
    assert counts[50] * 10 <= counts[1]
    tail_fraction = counts[200] / n_entries
    assert tail_fraction < 0.01
