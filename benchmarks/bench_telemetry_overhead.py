"""Telemetry overhead guard: disabled-mode seeding must stay free.

The telemetry layer promises a no-op fast path: with the module-level
flag off, `seed_read` takes one flag check per read and every recording
helper returns immediately.  This benchmark enforces that promise by
timing the instrumented driver (telemetry disabled) against a local
re-implementation of the three seeding rounds that contains *no*
telemetry calls at all -- the closest thing to the pre-instrumentation
code -- and asserting the slowdown stays under 3 %.

Trials are interleaved and the minimum per mode is compared, which
cancels warm-up and scheduler noise; on this workload the two loops are
within measurement jitter of each other.

Three more modes are measured: metrics enabled (reference, not
asserted), metrics enabled *with per-read exemplar sampling* (the
``--slowlog`` path: every read takes a stats-dict delta, a reservoir
offer and a wall-time histogram observe), and metrics enabled *with
timeline recording* (the ``--trace-out`` path, where every span also
lands a begin/end event pair in the ring buffer).  Exemplar sampling
must stay under a 5 % slowdown against plain enabled mode, and
recording under a 15 % slowdown against the no-telemetry baseline --
in practice the marginal costs sit inside measurement jitter.  All
five numbers land in ``benchmarks/results/telemetry_overhead.txt``.

``test_vector_telemetry_overhead`` guards the vector kernels the same
way: batch-flushed metrics (``KernelBatchStats``) and
accumulator-derived exemplars must each stay within 5 % of a dark
vector run.  The numbers are additionally appended to the
``kernels_throughput`` run ledger as a floor manifest (dark throughput
scaled by the budget) followed by an observed manifest, so
``ert-repro ledger diff --benchmark kernels_throughput --threshold
0.0`` fails in CI whenever observed vector throughput drops below
95 % of dark -- the same invariant, re-checkable from the persisted
manifests alone.
"""

import time
from pathlib import Path

from conftest import record_result

from repro import telemetry
from repro.analysis import format_table
from repro.core import ErtSeedingEngine
from repro.kernels import seed_batch, vector_decline_reason
from repro.ledger import append_record, build_record
from repro.parallel.scheduler import (
    instrumented_seed_batch,
    instrumented_seed_read,
)
from repro.seeding.algorithm import (
    SeedingResult,
    generate_smems,
    last_round,
    reseed_round,
    smems_to_seeds,
)
from repro.seeding import seed_read

LEDGER_PATH = Path(__file__).resolve().parent / "ledger.jsonl"
LEDGER_BENCHMARK = "kernels_throughput"

MAX_OVERHEAD = 0.03
MAX_EXEMPLAR_OVERHEAD = 0.05
MAX_RECORDING_OVERHEAD = 0.15
#: Budget for a fully observed vector batch (metrics alone, and metrics
#: plus exemplar derivation) against a dark vector batch.
MAX_VECTOR_OVERHEAD = 0.05
N_TRIALS = 7


def _baseline_seed_read(engine, read, params):
    """The three rounds exactly as `seed_read` runs them, minus every
    telemetry touchpoint (no flag check, no spans, no flush)."""
    engine.begin_read()
    result = SeedingResult()
    smems = generate_smems(engine, read, params)
    result.smems = smems_to_seeds(engine, read, smems, params)
    if params.reseed:
        result.reseed_seeds = reseed_round(engine, read, result.smems,
                                           params)
    if params.use_last:
        result.last_seeds = last_round(engine, read, params)
    return result


def _time_batch(fn, engine, reads, params) -> float:
    start = time.perf_counter()
    for read in reads:
        fn(engine, read, params)
    return time.perf_counter() - start


def test_disabled_telemetry_overhead(ert_index, reads, params):
    engine = ErtSeedingEngine(ert_index)
    workload = reads[:200]
    telemetry.disable()
    telemetry.reset()

    baseline = instrumented = float("inf")
    for _ in range(N_TRIALS):
        baseline = min(baseline, _time_batch(_baseline_seed_read, engine,
                                             workload, params))
        instrumented = min(instrumented, _time_batch(seed_read, engine,
                                                     workload, params))
    assert telemetry.registry().is_empty, \
        "disabled-mode seeding leaked metrics into the registry"

    def _exemplar_seed_read(engine, read, params):
        return instrumented_seed_read(engine, "r", read, params)

    telemetry.enable()
    enabled = exemplar = recording = float("inf")
    for _ in range(N_TRIALS):
        enabled = min(enabled, _time_batch(seed_read, engine, workload,
                                           params))
        exemplar = min(exemplar, _time_batch(_exemplar_seed_read, engine,
                                             workload, params))
        telemetry.start_recording()
        recording = min(recording, _time_batch(seed_read, engine,
                                               workload, params))
        telemetry.stop_recording()
    assert not telemetry.exemplars().is_empty, \
        "exemplar mode sampled no reads"
    assert len(telemetry.recorder()) > 0, \
        "recording mode produced no timeline events"
    telemetry.stop_recording()
    telemetry.recorder().clear()
    telemetry.disable()
    telemetry.reset()

    overhead = instrumented / baseline - 1.0
    exemplar_overhead = exemplar / enabled - 1.0
    recording_overhead = recording / baseline - 1.0
    n = len(workload)
    table = format_table(
        ["mode", "best s / 200 reads", "reads/s", "vs baseline"],
        [["no telemetry (baseline)", baseline, n / baseline, "1.000x"],
         ["instrumented, disabled", instrumented, n / instrumented,
          f"{instrumented / baseline:.3f}x"],
         ["instrumented, enabled", enabled, n / enabled,
          f"{enabled / baseline:.3f}x"],
         ["enabled + read exemplars", exemplar, n / exemplar,
          f"{exemplar / baseline:.3f}x"],
         ["enabled + timeline recording", recording, n / recording,
          f"{recording / baseline:.3f}x"]],
        title=f"telemetry overhead on ERT seeding "
              f"(best of {N_TRIALS} interleaved trials)")
    record_result("telemetry_overhead", table)
    assert overhead < MAX_OVERHEAD, (
        f"disabled telemetry costs {overhead * 100:.1f}% "
        f"(limit {MAX_OVERHEAD * 100:.0f}%): {instrumented:.4f}s vs "
        f"baseline {baseline:.4f}s")
    assert exemplar_overhead < MAX_EXEMPLAR_OVERHEAD, (
        f"exemplar sampling costs {exemplar_overhead * 100:.1f}% over "
        f"enabled mode (limit {MAX_EXEMPLAR_OVERHEAD * 100:.0f}%): "
        f"{exemplar:.4f}s vs enabled {enabled:.4f}s")
    assert recording_overhead < MAX_RECORDING_OVERHEAD, (
        f"timeline recording costs {recording_overhead * 100:.1f}% "
        f"(limit {MAX_RECORDING_OVERHEAD * 100:.0f}%): {recording:.4f}s "
        f"vs baseline {baseline:.4f}s")


def test_vector_telemetry_overhead(ert_index, reads, params):
    """Observed vector batches stay within 5 % of dark vector batches.

    Three interleaved modes over the full 500-read workload, one
    ``seed_batch`` sweep each: telemetry off (the accumulators still
    run -- they are unconditional -- but the flush is a no-op), metrics
    on (one registry flush per batch), and metrics plus the
    accumulator-derived per-read exemplars (``--slowlog`` in vector
    mode).  The results also land in the ``kernels_throughput`` ledger
    so the CI diff gate re-checks the budget from the manifests.
    """
    engine = ErtSeedingEngine(ert_index)
    assert vector_decline_reason(engine) is None
    names = [f"r{i}" for i in range(len(reads))]

    def run_batch(instrumented: bool) -> float:
        engine.begin_batch(reads)
        start = time.perf_counter()
        if instrumented:
            instrumented_seed_batch(engine, names, reads, params)
        else:
            seed_batch(engine, reads, params)
        return time.perf_counter() - start

    telemetry.disable()
    telemetry.reset()
    dark = metrics = exemplar = float("inf")
    for _ in range(N_TRIALS):
        telemetry.disable()
        dark = min(dark, run_batch(instrumented=False))
        telemetry.enable()
        metrics = min(metrics, run_batch(instrumented=False))
        exemplar = min(exemplar, run_batch(instrumented=True))
        telemetry.disable()
        telemetry.reset()
    metrics_overhead = metrics / dark - 1.0
    exemplar_overhead = exemplar / dark - 1.0

    n = len(reads)
    dark_rps = n / dark
    table = format_table(
        ["mode", f"best s / {n} reads", "reads/s", "vs dark"],
        [["vector, dark", dark, dark_rps, "1.000x"],
         ["vector + metrics", metrics, n / metrics,
          f"{metrics / dark:.3f}x"],
         ["vector + metrics + exemplars", exemplar, n / exemplar,
          f"{exemplar / dark:.3f}x"]],
        title=f"vector kernel telemetry overhead "
              f"(best of {N_TRIALS} interleaved trials)")
    record_result("vector_telemetry_overhead", table)

    # Floor manifest first, observed manifest second: the ledger diff
    # ("last two runs") then fails exactly when an observed mode drops
    # below (1 - MAX_VECTOR_OVERHEAD) of dark throughput.
    workload = {"reads": n, "read_length": int(reads[0].size),
                "genome_length": len(ert_index.reference),
                "k": ert_index.config.k}
    floor_rps = dark_rps * (1.0 - MAX_VECTOR_OVERHEAD)
    append_record(str(LEDGER_PATH), build_record(
        LEDGER_BENCHMARK,
        {"seeding.observed_metrics_reads_per_sec": floor_rps,
         "seeding.observed_exemplars_reads_per_sec": floor_rps},
        label="telemetry-vector-floor", workload=workload,
        config={"kernels": "vector", "telemetry": "dark-floor",
                "max_overhead": MAX_VECTOR_OVERHEAD}))
    append_record(str(LEDGER_PATH), build_record(
        LEDGER_BENCHMARK,
        {"seeding.observed_metrics_reads_per_sec": n / metrics,
         "seeding.observed_exemplars_reads_per_sec": n / exemplar,
         "seeding.dark_reads_per_sec": dark_rps,
         "vector_metrics_overhead": metrics_overhead,
         "vector_exemplars_overhead": exemplar_overhead},
        label="telemetry-vector-observed", workload=workload,
        config={"kernels": "vector", "telemetry": "observed",
                "max_overhead": MAX_VECTOR_OVERHEAD}))

    assert metrics_overhead < MAX_VECTOR_OVERHEAD, (
        f"vector batch metrics cost {metrics_overhead * 100:.1f}% "
        f"(limit {MAX_VECTOR_OVERHEAD * 100:.0f}%): {metrics:.4f}s vs "
        f"dark {dark:.4f}s")
    assert exemplar_overhead < MAX_VECTOR_OVERHEAD, (
        f"vector exemplar capture costs {exemplar_overhead * 100:.1f}% "
        f"(limit {MAX_VECTOR_OVERHEAD * 100:.0f}%): {exemplar:.4f}s vs "
        f"dark {dark:.4f}s")
