"""Telemetry overhead guard: disabled-mode seeding must stay free.

The telemetry layer promises a no-op fast path: with the module-level
flag off, `seed_read` takes one flag check per read and every recording
helper returns immediately.  This benchmark enforces that promise by
timing the instrumented driver (telemetry disabled) against a local
re-implementation of the three seeding rounds that contains *no*
telemetry calls at all -- the closest thing to the pre-instrumentation
code -- and asserting the slowdown stays under 3 %.

Trials are interleaved and the minimum per mode is compared, which
cancels warm-up and scheduler noise; on this workload the two loops are
within measurement jitter of each other.

Three more modes are measured: metrics enabled (reference, not
asserted), metrics enabled *with per-read exemplar sampling* (the
``--slowlog`` path: every read takes a stats-dict delta, a reservoir
offer and a wall-time histogram observe), and metrics enabled *with
timeline recording* (the ``--trace-out`` path, where every span also
lands a begin/end event pair in the ring buffer).  Exemplar sampling
must stay under a 5 % slowdown against plain enabled mode, and
recording under a 15 % slowdown against the no-telemetry baseline --
in practice the marginal costs sit inside measurement jitter.  All
five numbers land in ``benchmarks/results/telemetry_overhead.txt``.
"""

import time

from conftest import record_result

from repro import telemetry
from repro.analysis import format_table
from repro.core import ErtSeedingEngine
from repro.parallel.scheduler import instrumented_seed_read
from repro.seeding.algorithm import (
    SeedingResult,
    generate_smems,
    last_round,
    reseed_round,
    smems_to_seeds,
)
from repro.seeding import seed_read

MAX_OVERHEAD = 0.03
MAX_EXEMPLAR_OVERHEAD = 0.05
MAX_RECORDING_OVERHEAD = 0.15
N_TRIALS = 7


def _baseline_seed_read(engine, read, params):
    """The three rounds exactly as `seed_read` runs them, minus every
    telemetry touchpoint (no flag check, no spans, no flush)."""
    engine.begin_read()
    result = SeedingResult()
    smems = generate_smems(engine, read, params)
    result.smems = smems_to_seeds(engine, read, smems, params)
    if params.reseed:
        result.reseed_seeds = reseed_round(engine, read, result.smems,
                                           params)
    if params.use_last:
        result.last_seeds = last_round(engine, read, params)
    return result


def _time_batch(fn, engine, reads, params) -> float:
    start = time.perf_counter()
    for read in reads:
        fn(engine, read, params)
    return time.perf_counter() - start


def test_disabled_telemetry_overhead(ert_index, reads, params):
    engine = ErtSeedingEngine(ert_index)
    workload = reads[:200]
    telemetry.disable()
    telemetry.reset()

    baseline = instrumented = float("inf")
    for _ in range(N_TRIALS):
        baseline = min(baseline, _time_batch(_baseline_seed_read, engine,
                                             workload, params))
        instrumented = min(instrumented, _time_batch(seed_read, engine,
                                                     workload, params))
    assert telemetry.registry().is_empty, \
        "disabled-mode seeding leaked metrics into the registry"

    def _exemplar_seed_read(engine, read, params):
        return instrumented_seed_read(engine, "r", read, params)

    telemetry.enable()
    enabled = exemplar = recording = float("inf")
    for _ in range(N_TRIALS):
        enabled = min(enabled, _time_batch(seed_read, engine, workload,
                                           params))
        exemplar = min(exemplar, _time_batch(_exemplar_seed_read, engine,
                                             workload, params))
        telemetry.start_recording()
        recording = min(recording, _time_batch(seed_read, engine,
                                               workload, params))
        telemetry.stop_recording()
    assert not telemetry.exemplars().is_empty, \
        "exemplar mode sampled no reads"
    assert len(telemetry.recorder()) > 0, \
        "recording mode produced no timeline events"
    telemetry.stop_recording()
    telemetry.recorder().clear()
    telemetry.disable()
    telemetry.reset()

    overhead = instrumented / baseline - 1.0
    exemplar_overhead = exemplar / enabled - 1.0
    recording_overhead = recording / baseline - 1.0
    n = len(workload)
    table = format_table(
        ["mode", "best s / 200 reads", "reads/s", "vs baseline"],
        [["no telemetry (baseline)", baseline, n / baseline, "1.000x"],
         ["instrumented, disabled", instrumented, n / instrumented,
          f"{instrumented / baseline:.3f}x"],
         ["instrumented, enabled", enabled, n / enabled,
          f"{enabled / baseline:.3f}x"],
         ["enabled + read exemplars", exemplar, n / exemplar,
          f"{exemplar / baseline:.3f}x"],
         ["enabled + timeline recording", recording, n / recording,
          f"{recording / baseline:.3f}x"]],
        title=f"telemetry overhead on ERT seeding "
              f"(best of {N_TRIALS} interleaved trials)")
    record_result("telemetry_overhead", table)
    assert overhead < MAX_OVERHEAD, (
        f"disabled telemetry costs {overhead * 100:.1f}% "
        f"(limit {MAX_OVERHEAD * 100:.0f}%): {instrumented:.4f}s vs "
        f"baseline {baseline:.4f}s")
    assert exemplar_overhead < MAX_EXEMPLAR_OVERHEAD, (
        f"exemplar sampling costs {exemplar_overhead * 100:.1f}% over "
        f"enabled mode (limit {MAX_EXEMPLAR_OVERHEAD * 100:.0f}%): "
        f"{exemplar:.4f}s vs enabled {enabled:.4f}s")
    assert recording_overhead < MAX_RECORDING_OVERHEAD, (
        f"timeline recording costs {recording_overhead * 100:.1f}% "
        f"(limit {MAX_RECORDING_OVERHEAD * 100:.0f}%): {recording:.4f}s "
        f"vs baseline {baseline:.4f}s")
