"""§III-F and §III-B ablations: pruned backward searches and prefix
merging's traversal savings (the paper reports ~50 % fewer backward
searches from 1-character leaf prefixes)."""

import pytest

from repro.analysis import format_table
from repro.core import ErtSeedingEngine
from repro.seeding import SeedingParams, seed_read

from conftest import record_result


def _run(index, reads, min_seed_len, use_pruning):
    engine = ErtSeedingEngine(index)
    params = SeedingParams(min_seed_len=min_seed_len,
                           use_pruning=use_pruning)
    for read in reads:
        seed_read(engine, read, params)
    return engine.stats


def test_ablation_pruning_and_prefix_merging(benchmark, ert_index,
                                             ert_pm_index, reads, params):
    def run():
        return {
            "ERT, no pruning": _run(ert_index, reads, params.min_seed_len,
                                    False),
            "ERT, pruning": _run(ert_index, reads, params.min_seed_len,
                                 True),
            "ERT-PM, pruning": _run(ert_pm_index, reads,
                                    params.min_seed_len, True),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, s in stats.items():
        traversals = s.backward_searches - s.merged_backward_searches
        rows.append([name, s.forward_searches, s.backward_searches,
                     s.pruned_backward_searches,
                     s.merged_backward_searches, traversals])
    table = format_table(
        ["config", "fwd searches", "bwd searches", "pruned", "merged",
         "bwd traversals"],
        rows,
        title="SIII-F / SIII-B ablation -- backward-search work "
              "(paper: right-to-left pruning skips redundant searches; "
              "prefix merging halves backward traversals)")
    record_result("ablation_pruning_prefix_merging", table)

    no_prune = stats["ERT, no pruning"]
    prune = stats["ERT, pruning"]
    pm = stats["ERT-PM, pruning"]
    assert prune.backward_searches < no_prune.backward_searches
    assert prune.pruned_backward_searches > 0
    assert pm.merged_backward_searches > 0
    # Merged pairs save full traversals.
    pm_traversals = pm.backward_searches - pm.merged_backward_searches
    assert pm_traversals < prune.backward_searches
