"""Table VI: overall read-alignment throughput on AWS EC2.

Paper (Mreads/s): BWA-MEM 0.216, BWA-MEM2 0.43, FPGA-ERT + SeedEx 0.903
(2.1x over BWA-MEM2).  Model: CPU systems spend ~40 % of alignment time
in seeding (§II), so their overall rate is 0.40x the modelled seeding
rate; the accelerated system is the minimum of simulated FPGA seeding
(two FPGAs) and the SeedEx extension model fed with measured per-read
extension workloads.
"""

import pytest

from repro.accel import AcceleratorSim, capture_reuse_jobs
from repro.analysis import cpu_throughput, format_table, measure_traffic
from repro.core import ErtSeedingEngine
from repro.extend import ReadAligner, SeedExModel
from repro.fmindex import FmdSeedingEngine

from conftest import record_result

#: §II: seeding is ~40 % of BWA-MEM2 alignment time (0.43/1.09 in Fig 11
#: and Table VI corroborate the same share).
CPU_SEEDING_TIME_SHARE = 0.40


def _cpu_overall(engine, reads, params):
    profile = measure_traffic(engine, reads, params)
    per_read = {phase: reqs / profile.reads
                for phase, (reqs, _b) in profile.by_phase.items()}
    seeding = cpu_throughput(profile.bytes_per_read, per_read)["throughput"]
    return seeding * CPU_SEEDING_TIME_SHARE


def _accelerated(reference, ert_pm_index, reads, params, fpga):
    jobs, _stats = capture_reuse_jobs(ert_pm_index, reads, params,
                                      fpga.decode_cycles)
    seeding = 2 * AcceleratorSim(fpga).run(
        jobs, n_reads=len(reads)).reads_per_second
    # Measure real extension workloads by aligning a sample end to end.
    aligner = ReadAligner(reference, ErtSeedingEngine(ert_pm_index), params)
    workloads = [aligner.align(read).workload for read in reads[:100]]
    extension = SeedExModel().throughput_reads_per_s(workloads)
    return seeding, extension, min(seeding, extension)


def test_table6_overall_alignment(benchmark, reference, fmd_mem_index,
                                  fmd_mem2_index, ert_pm_index, reads,
                                  params, fpga):
    def run():
        rows = {
            "BWA-MEM": _cpu_overall(FmdSeedingEngine(fmd_mem_index), reads,
                                    params),
            "BWA-MEM2": _cpu_overall(FmdSeedingEngine(fmd_mem2_index),
                                     reads, params),
        }
        seeding, extension, overall = _accelerated(
            reference, ert_pm_index, reads, params, fpga)
        rows["FPGA-ERT + SeedEx"] = overall
        return rows, seeding, extension

    rows, seeding, extension = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    base = rows["BWA-MEM2"]
    printable = [[name, tput / 1e6, tput / base]
                 for name, tput in rows.items()]
    printable.append(["  (accel seeding stage)", seeding / 1e6, ""])
    printable.append(["  (accel extension stage)", extension / 1e6, ""])
    table = format_table(
        ["system", "Mreads/s", "vs BWA-MEM2"],
        printable,
        title="Table VI -- overall read alignment throughput "
              "(paper: 0.216 / 0.43 / 0.903 Mreads/s; accelerated system "
              "2.1x over BWA-MEM2)")
    record_result("table6_overall_alignment", table)

    assert rows["BWA-MEM"] < rows["BWA-MEM2"]
    assert rows["FPGA-ERT + SeedEx"] > 1.2 * rows["BWA-MEM2"]
