"""§III-C ablation: k-mer reuse vs batch size, phase split, cache sizing.

Paper: ~45 % of index/tree accesses are reusable at batch size 1000,
improving only slightly beyond; forward/backward/sort phases take
26.4 % / 67.6 % / 6 % of seeding time; a 4 MB direct-mapped reuse cache
is within 1.2 % of fully associative.
"""

import pytest

from repro.analysis import format_table
from repro.core import ErtSeedingEngine, KmerReuseDriver
from repro.seeding import SeedingParams

from conftest import record_result


def _sweep(index, reads, params):
    rows = []
    for batch in (50, 125, 250, 500):
        driver = KmerReuseDriver(ErtSeedingEngine(index), params)
        driver.seed_batch(reads[:batch])
        stats = driver.last_stats
        total_time = (stats.forward_seconds + stats.sort_seconds
                      + stats.backward_seconds) or 1.0
        rows.append([batch, stats.tasks, stats.reuse_fraction * 100,
                     stats.cache_hit_rate * 100,
                     100 * stats.forward_seconds / total_time,
                     100 * stats.backward_seconds / total_time,
                     100 * stats.sort_seconds / total_time])
    return rows


def _cache_geometry(index, reads, params):
    rows = []
    for label, ways in (("direct-mapped", 1), ("4-way", 4),
                        ("fully assoc", None)):
        driver = KmerReuseDriver(ErtSeedingEngine(index), params,
                                 cache_ways=ways)
        driver.seed_batch(reads[:200])
        rows.append([label, driver.last_stats.cache_hit_rate * 100])
    return rows


def _cache_sizes(index, reads, params):
    """Paper: little reuse benefit beyond a 4 MB cache."""
    rows = []
    for kib in (16, 64, 256, 1024, 4096):
        driver = KmerReuseDriver(ErtSeedingEngine(index), params,
                                 cache_bytes=kib * 1024)
        driver.seed_batch(reads[:200])
        rows.append([kib, driver.last_stats.cache_hit_rate * 100])
    return rows


def test_ablation_kmer_reuse(benchmark, ert_pm_index, reads, params):
    sweep, geometry, sizes = benchmark.pedantic(
        lambda: (_sweep(ert_pm_index, reads, params),
                 _cache_geometry(ert_pm_index, reads, params),
                 _cache_sizes(ert_pm_index, reads, params)),
        rounds=1, iterations=1)

    table = format_table(
        ["batch", "bwd tasks", "reuse %", "cache hit %", "fwd time %",
         "bwd time %", "sort time %"],
        sweep,
        title="SIII-C ablation -- k-mer reuse vs batch size "
              "(paper: ~45% reuse at batch 1000; phase split "
              "26.4/67.6/6%)")
    table += "\n\n" + format_table(
        ["reuse cache geometry", "hit rate %"], geometry,
        title="Cache geometry (paper: direct-mapped within 1.2% of fully "
              "associative)")
    table += "\n\n" + format_table(
        ["cache KiB", "hit rate %"], sizes,
        title="Cache size (paper: little benefit beyond 4 MB)")
    record_result("ablation_kmer_reuse", table)

    reuse = [row[2] for row in sweep]
    assert reuse[-1] >= reuse[0]  # reuse grows (or saturates) with batch
    assert reuse[-1] > 20.0
    # Backward phase dominates, as in the paper's 26.4/67.6/6 split.
    assert sweep[-1][5] > sweep[-1][4]
    hit_rates = {label: rate for label, rate in geometry}
    assert abs(hit_rates["direct-mapped"] - hit_rates["fully assoc"]) < 10.0
