"""Fig 1: (a) the seeding roofline, (b) index size vs data needed.

Paper: the FMD-index's bandwidth inefficiency caps any accelerator at
~2.1x over the 72-thread CPU; the ERT's 4.5x data-efficiency gain moves
the roofline up ~10x.  (b): BWA-MEM 4.3 GB index / most data per read,
BWA-MEM2 10 GB / less, ERT 62.1 GB / least -- a monotone trade-off.
"""

import pytest

from repro.analysis import (
    CpuSystem,
    cpu_throughput,
    format_table,
    measure_traffic,
)
from repro.core import ErtSeedingEngine
from repro.fmindex import FmdSeedingEngine

from conftest import record_result


def _roofline(fmd_mem_index, fmd_mem2_index, ert_index, reads, params):
    system = CpuSystem()
    out = {}
    for name, engine, index in (
            ("BWA-MEM", FmdSeedingEngine(fmd_mem_index), fmd_mem_index),
            ("BWA-MEM2", FmdSeedingEngine(fmd_mem2_index), fmd_mem2_index),
            ("ERT", ErtSeedingEngine(ert_index), ert_index)):
        profile = measure_traffic(engine, reads, params, name=name)
        per_read = {phase: reqs / profile.reads
                    for phase, (reqs, _b) in profile.by_phase.items()}
        roofline = cpu_throughput(profile.bytes_per_read, per_read, system)
        out[name] = (profile, roofline, index.index_bytes()["total"])
    return out


def test_fig01_roofline_and_index_tradeoff(benchmark, fmd_mem_index,
                                           fmd_mem2_index, ert_index,
                                           reads, params):
    data = benchmark.pedantic(
        _roofline, args=(fmd_mem_index, fmd_mem2_index, ert_index, reads,
                         params),
        rounds=1, iterations=1)

    rows_a = []
    for name, (profile, roofline, _size) in data.items():
        rows_a.append([
            name, profile.kb_per_read,
            roofline["bandwidth_roof"] / 1e6,
            roofline["compute_roof"] / 1e6,
            roofline["throughput"] / 1e6,
        ])
    table_a = format_table(
        ["config", "KB/read", "bandwidth roof (Mr/s)",
         "compute roof (Mr/s)", "attainable (Mr/s)"],
        rows_a,
        title="Fig 1a -- seeding roofline on the Table I CPU "
              "(paper: FMD accelerators capped at ~2.1x over CPU; "
              "ERT raises the bandwidth roof ~4.5x)")
    record_result("fig01a_roofline", table_a)

    genome_bp = len(ert_index.reference)
    rows_b = [[name, size / 1024, size / genome_bp,
               profile.kb_per_read]
              for name, (profile, _roof, size) in data.items()]
    table_b = format_table(
        ["config", "index KiB", "index bytes/bp", "data for seeding KB/read"],
        rows_b,
        title="Fig 1b -- index size vs data required for seeding "
              "(paper: 4.3 GB / 10 GB / 62.1 GB for BWA-MEM / BWA-MEM2 / "
              "ERT at 3 Gbp)")
    record_result("fig01b_index_tradeoff", table_b)

    # Shapes: bigger index => less data per read, higher bandwidth roof.
    mem, mem2, ert = (data[n] for n in ("BWA-MEM", "BWA-MEM2", "ERT"))
    assert mem[2] < mem2[2] < ert[2]
    assert mem[0].kb_per_read > mem2[0].kb_per_read > ert[0].kb_per_read
    # The ERT bandwidth roof must sit several times above BWA-MEM2's.
    assert ert[1]["bandwidth_roof"] > 3 * mem2[1]["bandwidth_roof"]
