"""Shared benchmark workload and result reporting.

Every benchmark regenerates one of the paper's tables or figures on the
scaled synthetic workload (see DESIGN.md's substitution table): a 30 kbp
repeat-rich genome, 101 bp Illumina-like reads with the paper's ~80/20
perfect/erroneous mix, k = 8 (density-matched to the paper's k = 15 at
3 Gbp), min_seed_len = 19.

Reproduced rows are registered with :func:`record_result`; they are
written to ``benchmarks/results/<name>.txt`` and echoed in the pytest
terminal summary so ``pytest benchmarks/ --benchmark-only`` shows them.
"""

import json
from pathlib import Path

import pytest

from repro import telemetry
from repro.accel import asic_config, fpga_config
from repro.core import ErtConfig, build_ert
from repro.fmindex import FmdConfig, FmdIndex
from repro.seeding import SeedingParams
from repro.sequence import GenomeSimulator, ReadSimulator

GENOME_LEN = 30_000
N_READS = 500
READ_LEN = 101

_RESULTS: "list[tuple[str, str]]" = []
RESULTS_DIR = Path(__file__).parent / "results"


def record_result(name: str, table: str) -> None:
    """Register one reproduced table/figure for reporting.

    When the recording benchmark ran with telemetry enabled (see the
    ``telemetry_session`` fixture), the current snapshot is attached as a
    ``results/<name>.telemetry.json`` sidecar, so the benchmark
    trajectory carries per-stage span timings and counters alongside the
    headline table.
    """
    _RESULTS.append((name, table))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    if telemetry.enabled():
        snap = telemetry.snapshot()
        if any(snap.values()):
            (RESULTS_DIR / f"{name}.telemetry.json").write_text(
                json.dumps(snap, indent=2, sort_keys=True) + "\n")


@pytest.fixture()
def telemetry_session():
    """Opt-in per-benchmark telemetry: enables a clean registry for the
    test body and restores the disabled default afterwards.  Benchmarks
    that time the *disabled* path must not request this fixture."""
    telemetry.reset()
    telemetry.enable()
    yield telemetry
    telemetry.disable()
    telemetry.reset()


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for name, table in _RESULTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in table.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def reference():
    return GenomeSimulator(seed=2021).generate(GENOME_LEN)


@pytest.fixture(scope="session")
def reads(reference):
    sim = ReadSimulator(reference, read_length=READ_LEN,
                        error_read_fraction=0.2, seed=2022)
    return [r.codes for r in sim.simulate(N_READS)]


@pytest.fixture(scope="session")
def params():
    return SeedingParams(min_seed_len=19)


@pytest.fixture(scope="session")
def fmd_mem_index(reference):
    return FmdIndex(reference, FmdConfig.bwa_mem())


@pytest.fixture(scope="session")
def fmd_mem2_index(reference):
    return FmdIndex(reference, FmdConfig.bwa_mem2())


@pytest.fixture(scope="session")
def ert_cfg():
    return ErtConfig(k=8, max_seed_len=151, table_threshold=64, table_x=4)


@pytest.fixture(scope="session")
def ert_index(reference, ert_cfg):
    return build_ert(reference, ert_cfg)


@pytest.fixture(scope="session")
def ert_pm_index(reference):
    return build_ert(reference, ErtConfig(
        k=8, max_seed_len=151, table_threshold=64, table_x=4,
        prefix_merging=True))


@pytest.fixture(scope="session")
def asic():
    return asic_config()


@pytest.fixture(scope="session")
def fpga():
    return fpga_config()
