"""Table III: ASIC configuration, area and power, plus simulated
utilization of that configuration on the scaled workload."""

import pytest

from repro.accel import (
    ASIC_AREA_MM2,
    ASIC_POWER_W,
    AcceleratorSim,
    capture_ert_jobs,
)
from repro.analysis import format_table

from conftest import record_result


def test_table3_asic_configuration(benchmark, ert_index, reads, params,
                                   asic):
    jobs = capture_ert_jobs(ert_index, reads, params, asic.decode_cycles)
    result = benchmark.pedantic(AcceleratorSim(asic).run, args=(jobs,),
                                rounds=1, iterations=1)

    rows = [
        ["Seeding Machines", f"{asic.n_machines}x",
         ASIC_AREA_MM2["seeding_machines"],
         ASIC_POWER_W["seeding_machines"] * 1e3],
        ["K-mer Sorter + Metadata Table", "1x",
         ASIC_AREA_MM2["kmer_sorter_metadata"],
         ASIC_POWER_W["kmer_sorter_metadata"] * 1e3],
        ["K-mer Reuse Cache", "1x (4 MB direct-mapped)",
         ASIC_AREA_MM2["kmer_reuse_cache"],
         ASIC_POWER_W["kmer_reuse_cache"] * 1e3],
        ["Seeding Accelerator Total", "--", ASIC_AREA_MM2["total"],
         ASIC_POWER_W["accelerator_total"] * 1e3],
        ["DRAM Power", f"{asic.dram.channels} channels", "--",
         ASIC_POWER_W["dram"] * 1e3],
        ["Total System", "--", "--", ASIC_POWER_W["system_total"] * 1e3],
    ]
    table = format_table(
        ["component", "configuration", "area mm^2", "power mW"],
        rows,
        title=f"Table III -- ASIC configuration (28 nm, "
              f"{asic.clock_hz / 1e9:.2f} GHz, "
              f"{asic.n_machines * asic.contexts_per_machine} contexts); "
              f"simulated utilization on the scaled workload below")
    util = result.pe_utilization(asic.pes)
    util_rows = [[cls, count, f"{util[cls] * 100:.1f}%"]
                 for cls, count in asic.pes.items()]
    table += "\n\n" + format_table(
        ["PE class (per machine)", "count", "busy fraction"], util_rows)

    # DRAMPower-style cross-check of the Table III DRAM power row.
    from repro.memsim.energy import DramEnergyConfig
    energy_cfg = DramEnergyConfig()
    accesses = result.dram_page_opens + result.dram_row_hits
    dynamic_j = (result.dram_page_opens * energy_cfg.activate_nj
                 + accesses * energy_cfg.read_line_nj) * 1e-9
    power = (dynamic_j / result.seconds
             + energy_cfg.background_w_per_channel * asic.dram.channels)
    table += "\n\n" + format_table(
        ["DRAM power model", "W"],
        [["simulated (dynamic + background)", power],
         ["paper Table III", ASIC_POWER_W["dram"]]],
        title="DRAM power cross-check (DRAMPower stand-in)")
    record_result("table3_asic_config", table)
    assert 0.1 < power < 20.0  # same order as the paper's 2.19 W

    parts = (ASIC_AREA_MM2["seeding_machines"]
             + ASIC_AREA_MM2["kmer_sorter_metadata"]
             + ASIC_AREA_MM2["kmer_reuse_cache"])
    assert parts == pytest.approx(ASIC_AREA_MM2["total"], rel=0.01)
    assert result.reads_per_second > 0
