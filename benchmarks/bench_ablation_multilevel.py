"""§III-E ablation: the two-level index table.

Paper: enumerating x = 4 suffix characters for dense k-mers (fan-out 256)
improves CPU seeding ~10 % over x = 1; two levels suffice because trees
are shallow (83 % of leaves at depth <= 8).
"""

import pytest

from repro.analysis import format_table, measure_traffic
from repro.core import (
    ErtConfig,
    ErtSeedingEngine,
    build_ert,
    depth_census,
    index_census,
)

from conftest import record_result


def _run_variants(reference, reads, params):
    rows = []
    nodes = {}
    # A low density threshold stands in for the paper's ">256 hits at
    # 3 Gbp": the *fraction* of k-mers dense enough for a second level
    # must be comparable, so the threshold scales with the genome.
    for label, multilevel, x in (("no table (x=0)", False, 1),
                                 ("x=1", True, 1),
                                 ("x=2", True, 2),
                                 ("x=4", True, 4)):
        index = build_ert(reference, ErtConfig(
            k=8, max_seed_len=151, table_threshold=8, table_x=x,
            multilevel=multilevel))
        engine = ErtSeedingEngine(index)
        measure_traffic(engine, reads, params)
        census = index_census(index)
        rows.append([label, census.table,
                     engine.stats.nodes_visited / len(reads),
                     index.index_bytes()["tables"] / 1024])
        nodes[label] = engine.stats.nodes_visited
    return rows, nodes


def test_ablation_multilevel_table(benchmark, reference, reads, params,
                                   ert_index):
    rows, nodes = benchmark.pedantic(
        _run_variants, args=(reference, reads, params), rounds=1,
        iterations=1)
    census = depth_census(ert_index)
    table = format_table(
        ["config", "TABLE k-mers", "nodes visited/read", "tables KiB"],
        rows,
        title="SIII-E ablation -- multi-level index table "
              "(paper: x=4 beats x=1 by ~10% on CPU; "
              f"leaf depth <= 8 fraction here: "
              f"{census.fraction_at_most(8) * 100:.1f}%, paper 83%)")
    record_result("ablation_multilevel", table)

    # Larger jump tables skip more node decodes.
    assert nodes["x=4"] < nodes["x=1"] <= nodes["no table (x=0)"]
    # Shallow trees (the reason two levels suffice).
    assert census.fraction_at_most(8) > 0.5
