"""Table IV: per-FPGA resource utilization (XCVU9P), with the simulated
FPGA configuration's throughput alongside."""

import pytest

from repro.accel import (
    AcceleratorSim,
    FPGA_RESOURCES,
    capture_reuse_jobs,
)
from repro.analysis import format_table

from conftest import record_result


def test_table4_fpga_resources(benchmark, ert_pm_index, reads, params,
                               fpga):
    jobs, _stats = capture_reuse_jobs(ert_pm_index, reads, params,
                                      fpga.decode_cycles)
    result = benchmark.pedantic(
        AcceleratorSim(fpga).run, args=(jobs,),
        kwargs={"n_reads": len(reads)}, rounds=1, iterations=1)

    rows = [[name, res["lut"], res["bram"], res["uram"]]
            for name, res in FPGA_RESOURCES.items()]
    table = format_table(
        ["component", "LUT %", "BRAM %", "URAM %"],
        rows,
        title=f"Table IV -- per-FPGA resource utilization "
              f"({fpga.n_machines} seeding machines at "
              f"{fpga.clock_hz / 1e6:.0f} MHz); simulated throughput "
              f"{result.mreads_per_second:.3f} Mreads/s per FPGA")
    record_result("table4_fpga_resources", table)

    total = FPGA_RESOURCES["total"]
    accel = FPGA_RESOURCES["seeding_accelerator_total"]
    shell = FPGA_RESOURCES["aws_shell"]
    for res in ("lut", "bram", "uram"):
        assert total[res] == pytest.approx(accel[res] + shell[res], abs=0.1)
        assert total[res] < 100.0
    assert result.reads_per_second > 0
