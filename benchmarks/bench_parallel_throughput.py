"""Tracked throughput benchmark for the repro.parallel batch engine.

Emits ``BENCH_parallel.json`` at the repository root -- a machine-
readable record of reads/sec for the legacy per-read loop, the batch
API's serial fast path, and the worker pool at 1/2/4 workers, plus a
batch-size sweep -- so the performance trajectory of the parallel layer
is tracked across PRs.

Numbers are machine-dependent by nature: ``cpu_count`` and a platform
fingerprint are recorded in the payload, and pool speedups only
materialize with more than one core.  On a single-core host the
multi-worker sweep is not a measurement at all (every pool
configuration timeshares one CPU), so those entries are skipped and
annotated ``"invalid_on_this_host"`` -- the run-ledger's metric
flattening (:func:`repro.ledger.flatten_metrics`) drops such subtrees
instead of recording misleading numbers.  The assertions pin what must
hold everywhere -- byte-identical output across every configuration
and a serial fast path at least on par with the per-read loop -- and
leave scaling claims to the JSON trajectory.
"""

import json
import os
import time
from pathlib import Path

from repro.core import ErtSeedingEngine
from repro.ledger import env_fingerprint
from repro.parallel import ParallelConfig, seed_reads
from repro.seeding import seed_read

from conftest import record_result

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4)
BATCH_SIZES = (16, 64, 256)
ROUNDS = 3

CPU_COUNT = os.cpu_count() or 1


def _time_best(fn, rounds=ROUNDS):
    """Best-of-N wall time and the last result (min filters scheduler
    noise, which dwarfs variance on a loaded CI box)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_best_paired(fn_a, fn_b, rounds=ROUNDS):
    """Best-of-N for two contenders, rounds interleaved A/B/A/B.

    Timing all of A's rounds before all of B's bakes host load drift
    into the A/B ratio (the second contender runs on a systematically
    different machine state); alternating rounds exposes both to the
    same drift, which is what makes a recorded ratio of the two
    meaningful on a shared box.  One untimed warm-up of each filters
    first-touch effects.
    """
    fn_a()
    fn_b()
    best_a = best_b = float("inf")
    result_a = result_b = None
    for _ in range(rounds):
        start = time.perf_counter()
        result_a = fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        result_b = fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return (best_a, result_a), (best_b, result_b)


def test_parallel_throughput_trajectory(ert_index, reads, params):
    n_reads = len(reads)

    def legacy_loop():
        engine = ErtSeedingEngine(ert_index)
        lines = []
        for i, read in enumerate(reads):
            for seed in seed_read(engine, read, params).all_seeds:
                hits = ",".join(str(h) for h in seed.hits)
                lines.append(f"read_{i}\t{seed.read_start}\t{seed.length}"
                             f"\t{seed.hit_count}\t{hits}\n")
        return lines

    def run(workers, batch_size=64, kernels=None):
        config = ParallelConfig(workers=workers, batch_size=batch_size,
                                kernels=kernels)
        lines, _stats = seed_reads(ert_index, reads, params, config)
        return lines

    # The headline ratio (serial fast path vs the legacy loop) gets the
    # paired interleaved measurement; everything else is a standalone
    # best-of-N.
    (legacy_s, _), (serial_s, serial_lines) = _time_best_paired(
        legacy_loop, lambda: run(1), rounds=5)

    by_workers = {1: {"seconds": serial_s,
                      "reads_per_sec": n_reads / serial_s}}
    baseline_lines = serial_lines
    for workers in WORKER_COUNTS:
        if workers == 1:
            continue
        if workers > 1 and CPU_COUNT <= 1:
            # Timesharing a pool on one core measures contention, not
            # throughput; still run once to assert output identity.
            lines = run(workers)
            assert baseline_lines is None or lines == baseline_lines, \
                f"workers={workers} changed the output"
            by_workers[workers] = {"skipped": "invalid_on_this_host"}
            continue
        elapsed, lines = _time_best(lambda w=workers: run(w))
        if baseline_lines is None:
            baseline_lines = lines
        assert lines == baseline_lines, \
            f"workers={workers} changed the output"
        by_workers[workers] = {
            "seconds": elapsed,
            "reads_per_sec": n_reads / elapsed,
        }

    by_batch = {}
    for batch_size in BATCH_SIZES:
        elapsed, lines = _time_best(
            lambda b=batch_size: run(workers=1, batch_size=b))
        assert lines == baseline_lines, \
            f"batch_size={batch_size} changed the output"
        by_batch[batch_size] = {
            "seconds": elapsed,
            "reads_per_sec": n_reads / elapsed,
        }

    # Vector-kernel legs: the batched ERT walk behind --kernels vector,
    # serial and at the pool maximum, byte-identical to the scalar
    # oracle by contract (asserted here like every other config).
    by_vector = {}
    vector_workers = [1] + [w for w in WORKER_COUNTS
                            if w > 1 and CPU_COUNT > 1][-1:]
    for workers in vector_workers:
        elapsed, lines = _time_best(
            lambda w=workers: run(w, batch_size=256, kernels="vector"))
        assert lines == baseline_lines, \
            f"kernels=vector workers={workers} changed the output"
        by_vector[workers] = {
            "seconds": elapsed,
            "reads_per_sec": n_reads / elapsed,
        }

    serial_rps = by_workers[1]["reads_per_sec"]
    measured = {w: row for w, row in by_workers.items()
                if "reads_per_sec" in row}
    payload = {
        "benchmark": "parallel_throughput",
        "workload": {
            "reads": n_reads,
            "read_length": int(reads[0].size),
            "genome_length": len(ert_index.reference),
            "k": ert_index.config.k,
        },
        "cpu_count": CPU_COUNT,
        "env": env_fingerprint(),
        "note": ("pool speedups require cpu_count > 1; compare "
                 "reads_per_sec across PRs on like-for-like hardware"),
        "legacy_per_read_loop": {
            "seconds": legacy_s,
            "reads_per_sec": n_reads / legacy_s,
        },
        "workers": {str(w): row for w, row in by_workers.items()},
        "batch_size_sweep_workers1": {
            str(b): row for b, row in by_batch.items()},
        "vector_kernels_batch256": {
            str(w): row for w, row in by_vector.items()},
        "speedup_vs_serial": {
            str(w): row["reads_per_sec"] / serial_rps
            for w, row in measured.items()},
        "serial_fast_path_vs_legacy":
            serial_rps / (n_reads / legacy_s),
        "vector_serial_vs_scalar_serial":
            by_vector[1]["reads_per_sec"] / serial_rps,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n")

    rows = [f"{'config':<24}{'reads/sec':>12}{'vs serial':>12}"]
    rows.append(f"{'legacy per-read loop':<24}"
                f"{n_reads / legacy_s:>12.1f}"
                f"{(n_reads / legacy_s) / serial_rps:>12.2f}")
    for workers, row in by_workers.items():
        if "reads_per_sec" not in row:
            rows.append(f"{f'{workers} worker(s)':<24}"
                        f"{'(skipped: 1 cpu)':>12}{'-':>12}")
            continue
        rows.append(f"{f'{workers} worker(s)':<24}"
                    f"{row['reads_per_sec']:>12.1f}"
                    f"{row['reads_per_sec'] / serial_rps:>12.2f}")
    for workers, row in by_vector.items():
        rows.append(f"{f'vector, {workers} worker(s)':<24}"
                    f"{row['reads_per_sec']:>12.1f}"
                    f"{row['reads_per_sec'] / serial_rps:>12.2f}")
    record_result(
        "parallel_throughput",
        f"parallel seeding throughput (cpu_count={CPU_COUNT})\n"
        + "\n".join(rows))

    # What must hold on any machine: identical output (asserted above),
    # sane positive rates, and a serial fast path that does not regress
    # against the legacy loop (10% tolerance for timer noise).
    assert all(row["reads_per_sec"] > 0 for row in measured.values())
    assert serial_rps >= 0.9 * (n_reads / legacy_s)
    # The batched vector walk must clearly beat the scalar serial path
    # (bench_kernels.py gates the full 3x acceptance floor).
    assert by_vector[1]["reads_per_sec"] >= 1.5 * serial_rps
