"""Fig 12: memory requests per read (a) and data fetched per read (b).

Paper values at human scale: BWA-MEM makes 6.7x and BWA-MEM2 4.5x more
memory requests than ERT; ERT-KR needs 15.1 KB/read vs BWA-MEM2's
68.5 KB.  The reproduced shape: the same ordering and large FMD-vs-ERT
factors on the scaled workload.
"""

import pytest

from repro.analysis import format_table, measure_traffic
from repro.core import ErtSeedingEngine, KmerReuseDriver
from repro.fmindex import FmdSeedingEngine

from conftest import record_result


def _profiles(fmd_mem_index, fmd_mem2_index, ert_index, ert_pm_index,
              reads, params):
    profiles = {}
    profiles["BWA-MEM"] = measure_traffic(
        FmdSeedingEngine(fmd_mem_index), reads, params, name="BWA-MEM")
    profiles["BWA-MEM2"] = measure_traffic(
        FmdSeedingEngine(fmd_mem2_index), reads, params, name="BWA-MEM2")
    profiles["ERT"] = measure_traffic(
        ErtSeedingEngine(ert_index), reads, params, name="ERT")
    profiles["ERT-PM"] = measure_traffic(
        ErtSeedingEngine(ert_pm_index), reads, params, name="ERT-PM")
    driver = KmerReuseDriver(ErtSeedingEngine(ert_pm_index), params)
    profiles["ERT-KR"] = measure_traffic(
        driver.engine, reads, params, name="ERT-KR", driver=driver)
    return profiles


def test_fig12_memory_traffic(benchmark, fmd_mem_index, fmd_mem2_index,
                              ert_index, ert_pm_index, reads, params):
    profiles = benchmark.pedantic(
        _profiles,
        args=(fmd_mem_index, fmd_mem2_index, ert_index, ert_pm_index,
              reads, params),
        rounds=1, iterations=1)

    ert_reqs = profiles["ERT"].requests_per_read
    rows = []
    for name, profile in profiles.items():
        rows.append([name,
                     profile.requests_per_read,
                     profile.kb_per_read,
                     profile.requests_per_read / ert_reqs])
    table = format_table(
        ["config", "mem requests/read", "KB/read", "requests vs ERT"],
        rows,
        title="Fig 12 -- memory requests and data fetched per read "
              "(paper: BWA-MEM 6.7x, BWA-MEM2 4.5x more requests than ERT; "
              "68.5 KB/read BWA-MEM2 vs 15.1 KB/read ERT-KR)")
    record_result("fig12_memory_traffic", table)

    # Shape assertions: the orderings the paper reports.
    assert profiles["BWA-MEM"].requests_per_read > \
        profiles["BWA-MEM2"].requests_per_read
    assert profiles["BWA-MEM2"].requests_per_read > \
        3 * profiles["ERT"].requests_per_read
    assert profiles["ERT-PM"].bytes_per_read <= \
        profiles["ERT"].bytes_per_read
