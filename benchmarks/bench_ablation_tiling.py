"""§III-D ablation: tiled vs DFS vs BFS node layout.

Paper: the tiled layout guarantees >= log4(n+1) node visits per tile and
achieves ~3 nodes traversed per 64 B fetched (50 % utilization).
"""

import pytest

from repro.analysis import format_table, measure_traffic
from repro.core import ErtConfig, ErtSeedingEngine, LayoutPolicy, build_ert

from conftest import record_result


def _run_layouts(reference, reads, params):
    rows = []
    profiles = {}
    for policy in (LayoutPolicy.TILED, LayoutPolicy.DFS, LayoutPolicy.BFS):
        index = build_ert(reference, ErtConfig(
            k=8, max_seed_len=151, table_threshold=64, table_x=4,
            layout=policy))
        engine = ErtSeedingEngine(index)
        profile = measure_traffic(engine, reads, params, name=policy.value)
        tree_phases = ("tree_root", "tree_traversal", "leaf_gather")
        tree_reqs = sum(profile.by_phase.get(p, (0, 0))[0]
                        for p in tree_phases)
        nodes = engine.stats.nodes_visited
        rows.append([policy.value, index.layout_stats.mean_nodes_per_tile,
                     tree_reqs / len(reads),
                     nodes / tree_reqs if tree_reqs else 0.0])
        profiles[policy] = tree_reqs
    return rows, profiles


def test_ablation_tiled_layout(benchmark, reference, reads, params):
    rows, profiles = benchmark.pedantic(
        _run_layouts, args=(reference, reads, params), rounds=1,
        iterations=1)
    table = format_table(
        ["layout", "mean nodes/tile", "tree line fetches/read",
         "nodes per 64B fetched"],
        rows,
        title="SIII-D ablation -- node layout "
              "(paper: tiled layout traverses ~3 nodes per 64 B)")
    record_result("ablation_tiled_layout", table)

    assert profiles[LayoutPolicy.TILED] <= profiles[LayoutPolicy.BFS]
    tiled_row = rows[0]
    assert tiled_row[1] >= 1.0       # more than one node per tile on average
    assert tiled_row[3] >= 1.0       # at least one node per fetched line
