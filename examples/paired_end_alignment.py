"""Paired-end alignment: proper pairs, insert sizes, and mate rescue.

Fragments are simulated in Illumina FR orientation; the pair-aware
aligner scores mate combinations under the insert-size envelope and
rescues mates whose seeds were destroyed by errors.

Run:  python examples/paired_end_alignment.py
"""

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.extend import PairedAligner, ReadAligner
from repro.extend.paired import FLAG_PROPER
from repro.seeding import SeedingParams
from repro.sequence import GenomeSimulator, PairedReadSimulator


def main() -> None:
    reference = GenomeSimulator(seed=61, interspersed_fraction=0.05,
                                element_length=60).generate(12_000)
    engine = ErtSeedingEngine(build_ert(reference, ErtConfig(
        k=8, max_seed_len=151)))
    aligner = PairedAligner(
        ReadAligner(reference, engine, SeedingParams(min_seed_len=19)),
        insert_mean=350, insert_sd=40)

    sim = PairedReadSimulator(reference, read_length=101, insert_mean=350,
                              insert_sd=40, error_read_fraction=0.3,
                              seed=62)
    pairs = sim.simulate(25)

    proper = correct = 0
    inserts = []
    for pair in pairs:
        rec1, rec2 = aligner.align_pair(pair.first.codes, pair.second.codes,
                                        name=pair.first.name.split("/")[0],
                                        quality1=pair.first.quality,
                                        quality2=pair.second.quality)
        if rec1.flag & FLAG_PROPER:
            proper += 1
            inserts.append(abs(rec2.pos - rec1.pos) + 101)
        for rec, read in ((rec1, pair.first), (rec2, pair.second)):
            if not rec.flag & 0x4 and abs(rec.pos - 1 - read.origin) <= 3:
                correct += 1
        print(f"{rec1.qname:10s} {rec1.pos:>6d}/{rec2.pos:<6d} "
              f"flags {rec1.flag:#05x}/{rec2.flag:#05x} "
              f"mapq {rec1.mapq}/{rec2.mapq} "
              f"{'PROPER' if rec1.flag & FLAG_PROPER else ''}")

    print(f"\nproper pairs: {proper}/{len(pairs)}; "
          f"mates at origin: {correct}/{2 * len(pairs)}")
    if inserts:
        mean = sum(inserts) / len(inserts)
        print(f"observed insert size ~{mean:.0f} bp "
              f"(simulated 350 +/- 40)")


if __name__ == "__main__":
    main()
