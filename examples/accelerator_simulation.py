"""Drive the seeding-accelerator simulator, the paper's §V methodology:
functional runs generate memory traces; the event-driven model replays
them on the ASIC and FPGA configurations.

Run:  python examples/accelerator_simulation.py
"""

from repro.accel import (
    AcceleratorSim,
    asic_config,
    capture_ert_jobs,
    capture_reuse_jobs,
    efficiency_row,
    fpga_config,
)
from repro.core import ErtConfig, build_ert
from repro.seeding import SeedingParams
from repro.sequence import GenomeSimulator, ReadSimulator


def main() -> None:
    reference = GenomeSimulator(seed=99).generate(25_000)
    reads = [r.codes for r in
             ReadSimulator(reference, read_length=101, seed=100)
             .simulate(400)]
    params = SeedingParams(min_seed_len=19)

    base_index = build_ert(reference, ErtConfig(k=8, max_seed_len=151))
    pm_index = build_ert(reference, ErtConfig(k=8, max_seed_len=151,
                                              prefix_merging=True))
    asic = asic_config()
    fpga = fpga_config()

    print("capturing functional traces ...")
    runs = []
    jobs = capture_ert_jobs(base_index, reads, params, asic.decode_cycles)
    runs.append(("ASIC-ERT", AcceleratorSim(asic).run(jobs)))
    jobs_pm = capture_ert_jobs(pm_index, reads, params, asic.decode_cycles)
    runs.append(("ASIC-ERT-PM", AcceleratorSim(asic).run(jobs_pm)))
    jobs_kr, stats = capture_reuse_jobs(pm_index, reads, params,
                                        asic.decode_cycles)
    runs.append(("ASIC-ERT-KR",
                 AcceleratorSim(asic).run(jobs_kr, n_reads=len(reads))))
    fpga_jobs, _ = capture_reuse_jobs(pm_index, reads, params,
                                      fpga.decode_cycles)
    runs.append(("FPGA-ERT",
                 AcceleratorSim(fpga).run(fpga_jobs, n_reads=len(reads))))

    print(f"\nk-mer reuse: {stats.reuse_fraction * 100:.0f}% of backward "
          f"tasks reuse a k-mer; cache hit rate "
          f"{stats.cache_hit_rate * 100:.0f}%\n")
    print(f"{'config':14s} {'Mreads/s':>9s} {'cycles':>12s} "
          f"{'page opens':>11s} {'row hit %':>10s}")
    for name, result in runs:
        total = result.dram_page_opens + result.dram_row_hits
        hit_pct = 100.0 * result.dram_row_hits / total if total else 0.0
        print(f"{name:14s} {result.mreads_per_second:9.2f} "
              f"{result.cycles:12,d} {result.dram_page_opens:11,d} "
              f"{hit_pct:9.1f}%")

    best = max(runs, key=lambda r: r[1].reads_per_second)
    row = efficiency_row(best[0], best[1].reads_per_second, "asic")
    print(f"\nbest config {best[0]}: "
          f"{row.kreads_per_s_per_mm2:.1f} KReads/s/mm^2, "
          f"{row.reads_per_mj:.1f} reads/mJ (Table V accounting)")


if __name__ == "__main__":
    main()
