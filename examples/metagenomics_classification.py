"""Seeding as a metagenomics kernel (the paper's intro cites Centrifuge):
classify reads from a mixed sample by which reference genome yields the
strongest exact-match seeds.

Three synthetic "species" genomes are indexed; reads drawn from a mixture
are assigned to the genome whose SMEMs cover the most read bases.  Exact
seeding -- the paper's accelerated kernel -- does all the work.

Run:  python examples/metagenomics_classification.py
"""

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.seeding import SeedingParams, seed_read
from repro.sequence import GenomeSimulator, ReadSimulator


def coverage(result, read_len: int) -> int:
    """Read bases covered by the result's seeds (merged intervals)."""
    spans = sorted((s.read_start, s.read_end) for s in result.all_seeds)
    covered = 0
    end = -1
    for start, stop in spans:
        if start > end:
            covered += stop - start
            end = stop
        elif stop > end:
            covered += stop - end
            end = stop
    return covered


def main() -> None:
    species = {}
    for i, name in enumerate(("species_a", "species_b", "species_c")):
        genome = GenomeSimulator(seed=200 + i).generate(12_000, name=name)
        species[name] = genome
    engines = {
        name: ErtSeedingEngine(build_ert(genome, ErtConfig(
            k=8, max_seed_len=151)))
        for name, genome in species.items()
    }
    params = SeedingParams(min_seed_len=19)

    # A mixed sample: reads from each species plus some junk.
    sample = []
    for i, (name, genome) in enumerate(species.items()):
        reads = ReadSimulator(genome, read_length=101,
                              error_read_fraction=0.3,
                              seed=300 + i).simulate(30)
        sample.extend((read, name) for read in reads)

    confusion = {name: {other: 0 for other in list(species) + ["unclassified"]}
                 for name in species}
    for read, truth in sample:
        scores = {name: coverage(seed_read(engine, read.codes, params), 101)
                  for name, engine in engines.items()}
        best_name, best_score = max(scores.items(), key=lambda kv: kv[1])
        runner_up = max(v for k, v in scores.items() if k != best_name)
        if best_score < 30 or best_score - runner_up < 10:
            confusion[truth]["unclassified"] += 1
        else:
            confusion[truth][best_name] += 1

    print(f"{'truth':12s}" + "".join(f"{n:>12s}" for n in species)
          + f"{'unclassified':>14s}")
    correct = total = 0
    for truth, row in confusion.items():
        print(f"{truth:12s}" + "".join(f"{row[n]:12d}" for n in species)
              + f"{row['unclassified']:14d}")
        correct += row[truth]
        total += sum(row.values())
    print(f"\nclassification accuracy: {100 * correct / total:.1f}% "
          f"({correct}/{total})")


if __name__ == "__main__":
    main()
