"""A worked SMEM example in the spirit of the paper's Fig 2: forward
search from a pivot, left-extension points, backward searches, and the
containment filter -- narrated step by step on a tiny reference.

Run:  python examples/smem_walkthrough.py
"""

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.seeding import SeedingParams, generate_smems
from repro.seeding.oracle import OracleEngine, count_occurrences
from repro.sequence import Reference
from repro.sequence.alphabet import decode, encode


def main() -> None:
    # A reference whose repeats create interesting LEP structure, plus a
    # read stitched from two reference segments (like Fig 2's example,
    # where the read's halves match different reference locations).
    reference = Reference.from_string(
        "CAATCTCAGGTTTACGATCTCAGTCGGCCAATCTACCCGTTACCAATCTC",
        name="toy")
    read = encode("CAATCTCAGTC")
    text = decode(reference.both_strands)
    print(f"reference: {reference.sequence}")
    print(f"read     : {decode(read)}\n")

    oracle = OracleEngine(reference)

    print("=== forward search from pivot 0 (SII-A step 1) ===")
    forward = oracle.forward_search(read, 0)
    prev = None
    for length in range(1, forward.end + 1):
        sub = decode(read[:length])
        count = count_occurrences(text, sub)
        marker = ""
        if prev is not None and count != prev:
            marker = f"  <-- hit set changed: LEP at {length - 1}"
        print(f"  {sub:12s} occurs {count:2d}x{marker}")
        prev = count
    print(f"forward match ends at {forward.end}; "
          f"LEPs = {list(forward.leps)} (the end is always an LEP)\n")

    print("=== backward searches, right-to-left (SII-A step 2) ===")
    mems = []
    for p in reversed(forward.leps):
        s = oracle.backward_search(read, p)
        mems.append((s, p))
        print(f"  segment ending at {p:2d}: extends left to {s:2d} "
              f"-> MEM {decode(read[s:p])!r}")

    print(f"\n=== next pivot = end of the longest match ({forward.end}) ===")
    x = forward.end
    while x < int(read.size):
        fs = oracle.forward_search(read, x)
        if fs.is_empty:
            x += 1
            continue
        print(f"  pivot {x}: match {decode(read[x:fs.end])!r}, "
              f"LEPs {list(fs.leps)}")
        for p in reversed(fs.leps):
            s = oracle.backward_search(read, p)
            mems.append((s, p))
            print(f"    backward from {p:2d}: MEM {decode(read[s:p])!r} "
                  f"[{s}, {p})")
        x = fs.end

    print("\n=== containment filter (SMEMs) ===")
    kept = []
    for s, p in sorted(set(mems)):
        contained = any(s2 <= s and p <= p2 for s2, p2 in mems
                        if (s2, p2) != (s, p))
        verdict = "discarded (contained)" if contained else "SMEM"
        if not contained:
            kept.append((s, p))
        print(f"  [{s:2d}, {p:2d}) {decode(read[s:p]):12s} {verdict}")

    print("\n=== the ERT finds exactly the same SMEMs ===")
    ert = ErtSeedingEngine(build_ert(reference, ErtConfig(
        k=3, max_seed_len=40)))
    smems = generate_smems(ert, read, SeedingParams(min_seed_len=1))
    print(f"  ERT SMEMs: {[(m.start, m.end) for m in smems]}")
    assert sorted(kept) == [(m.start, m.end) for m in sorted(smems)]
    print("  identical to the walkthrough above.")


if __name__ == "__main__":
    main()
