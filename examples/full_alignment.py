"""End-to-end read alignment: seed -> chain -> extend, with accuracy
scoring against the simulator's ground truth.

This is the workload behind the paper's Table VI (overall alignment
throughput); here the focus is the functional pipeline and its accuracy.

Run:  python examples/full_alignment.py
"""

import time

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.extend import ReadAligner
from repro.seeding import SeedingParams
from repro.sequence import GenomeSimulator, ReadSimulator


def main() -> None:
    reference = GenomeSimulator(seed=42, interspersed_fraction=0.1).generate(
        15_000)
    reads = ReadSimulator(reference, read_length=101,
                          error_read_fraction=0.2, seed=43).simulate(60)

    engine = ErtSeedingEngine(build_ert(reference, ErtConfig(
        k=8, max_seed_len=151)))
    aligner = ReadAligner(reference, engine, SeedingParams(min_seed_len=19))

    t0 = time.perf_counter()
    mapped = correct = multimapped = 0
    sw_total = 0
    for read in reads:
        outcome = aligner.align(read.codes, read.name)
        sw_total += outcome.workload.sw_extensions
        alignment = outcome.alignment
        if alignment is None or not alignment.is_mapped:
            continue
        mapped += 1
        if (abs(alignment.position - read.origin) <= 2
                and alignment.strand == read.strand):
            correct += 1
        elif alignment.score == len(read.codes):
            multimapped += 1  # perfect match at a repeat copy
        print(f"{read.name:10s} {alignment.strand}{alignment.position:<7d} "
              f"score={alignment.score:<4d} "
              f"(truth {read.strand}{read.origin})")
    elapsed = time.perf_counter() - t0

    print(f"\nmapped {mapped}/{len(reads)}, correct {correct}, "
          f"repeat multi-maps {multimapped}")
    print(f"{sw_total} banded Smith-Waterman extensions, "
          f"{len(reads) / elapsed:.1f} reads/s (pure-Python prototype)")


if __name__ == "__main__":
    main()
