"""Quickstart: build an ERT, seed a read, verify against the FMD-index.

Run:  python examples/quickstart.py
"""

from repro.core import ErtConfig, ErtSeedingEngine, build_ert
from repro.fmindex import FmdConfig, FmdIndex, FmdSeedingEngine
from repro.seeding import SeedingParams, seed_read
from repro.sequence import GenomeSimulator, ReadSimulator


def main() -> None:
    # 1. A synthetic repeat-rich reference (stands in for GRCh38; see
    #    DESIGN.md's substitution table).
    reference = GenomeSimulator(seed=7).generate(20_000)
    print(f"reference: {reference.name}, {len(reference):,} bp")

    # 2. Build both indexes over the double-strand text.
    ert_index = build_ert(reference, ErtConfig(k=8, max_seed_len=151))
    fmd_index = FmdIndex(reference, FmdConfig.bwa_mem2())
    sizes = ert_index.index_bytes()
    print(f"ERT index: {sizes['total'] / 1024:.0f} KiB "
          f"(table {sizes['index_table'] / 1024:.0f} KiB, "
          f"trees {sizes['trees'] / 1024:.0f} KiB) vs "
          f"FMD {fmd_index.index_bytes()['total'] / 1024:.0f} KiB")

    # 3. Simulate an Illumina-like read and seed it with both engines.
    read = ReadSimulator(reference, read_length=101, seed=8).simulate(1)[0]
    params = SeedingParams(min_seed_len=19)
    ert = ErtSeedingEngine(ert_index)
    fmd = FmdSeedingEngine(fmd_index)

    result = seed_read(ert, read.codes, params)
    print(f"\nread {read.name} ({read.strand} strand, origin {read.origin}):")
    for seed in result.all_seeds:
        hits = ", ".join(str(reference.to_forward(h, seed.length))
                         for h in seed.hits[:3])
        print(f"  seed read[{seed.read_start}:{seed.read_end}] "
              f"len={seed.length} hits={seed.hit_count}  {hits}"
              + (" ..." if seed.hit_count > 3 else ""))

    # 4. The paper's guarantee: bit-identical output to the FMD-index.
    fmd_result = seed_read(fmd, read.codes, params)
    assert result.key() == fmd_result.key()
    print("\nERT and FMD-index seeding outputs are identical.")


if __name__ == "__main__":
    main()
