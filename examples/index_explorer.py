"""Explore how ERT structure responds to k and to genome repetitiveness:
entry-kind census, hit skew (Fig 8), tree depths, and the bandwidth
advantage over the FMD-index (Fig 12's essence).

Run:  python examples/index_explorer.py
"""

from repro.analysis import measure_traffic
from repro.core import (
    ErtConfig,
    ErtSeedingEngine,
    build_ert,
    depth_census,
    hit_distribution,
    index_census,
)
from repro.fmindex import FmdConfig, FmdIndex, FmdSeedingEngine
from repro.seeding import SeedingParams
from repro.sequence import GenomeSimulator, ReadSimulator


def main() -> None:
    reference = GenomeSimulator(seed=17).generate(20_000)
    reads = [r.codes for r in
             ReadSimulator(reference, read_length=101, seed=18)
             .simulate(100)]
    params = SeedingParams(min_seed_len=19)

    print("=== entry census vs k (paper SIII-A3: 38.8% EMPTY at k=15) ===")
    print(f"{'k':>3s} {'EMPTY %':>8s} {'LEAF':>7s} {'TREE':>7s} "
          f"{'TABLE':>6s} {'index KiB':>10s}")
    for k in (6, 7, 8, 9):
        index = build_ert(reference, ErtConfig(k=k, max_seed_len=151))
        census = index_census(index)
        print(f"{k:3d} {census.empty_fraction * 100:8.1f} "
              f"{census.leaf:7d} {census.tree:7d} {census.table:6d} "
              f"{census.index_bytes['total'] / 1024:10.0f}")

    index = build_ert(reference, ErtConfig(k=8, max_seed_len=151))
    print("\n=== hit distribution (Fig 8) ===")
    for threshold, count in hit_distribution(index):
        print(f"  k-mers with > {threshold:5d} hits: {count}")

    depths = depth_census(index)
    print(f"\n=== tree depths (SIII-E: 83% of leaves at depth <= 8) ===")
    for d in (2, 4, 8, 16, 32):
        print(f"  leaves at depth <= {d:2d}: "
              f"{depths.fraction_at_most(d) * 100:5.1f}%")

    print("\n=== bandwidth: bytes fetched per read (Fig 12b) ===")
    ert_profile = measure_traffic(ErtSeedingEngine(index), reads, params)
    fmd_profile = measure_traffic(
        FmdSeedingEngine(FmdIndex(reference, FmdConfig.bwa_mem2())),
        reads, params)
    print(f"  BWA-MEM2 FMD-index: {fmd_profile.kb_per_read:7.2f} KB/read")
    print(f"  ERT:                {ert_profile.kb_per_read:7.2f} KB/read")
    print(f"  ERT advantage:      "
          f"{fmd_profile.bytes_per_read / ert_profile.bytes_per_read:.1f}x "
          f"(paper: 4.5x at human scale)")


if __name__ == "__main__":
    main()
